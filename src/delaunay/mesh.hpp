#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "delaunay/chunked.hpp"
#include "geom/bbox.hpp"
#include "geom/vec2.hpp"
#include "obs/annotations.hpp"

namespace aero {

/// Vertex index. kGhost denotes the single topological vertex "at infinity"
/// that closes the triangulation into a sphere; every convex-hull edge is
/// shared between a finite triangle and a ghost triangle incident to kGhost.
using VertIndex = std::int32_t;
using TriIndex = std::int32_t;
inline constexpr VertIndex kGhost = -1;
inline constexpr TriIndex kNoTri = -1;

/// A value snapshot of one triangle, assembled from the SoA arrays by
/// DelaunayMesh::tri(). Finite triangles store their vertices in
/// counter-clockwise order. Ghost triangles have v[2] == kGhost and
/// (v[0], v[1]) traversing the convex hull so that the finite interior is on
/// the right of v[0]->v[1] (i.e. the matching finite triangle owns the
/// directed hull edge (v[1], v[0])).
struct MeshTri {
  std::array<VertIndex, 3> v{kGhost, kGhost, kGhost};
  /// Neighbor across the edge opposite v[i]; edge i is (v[i+1], v[i+2]).
  std::array<TriIndex, 3> n{kNoTri, kNoTri, kNoTri};
  /// Per-edge constraint marks, aligned with `n`.
  std::array<bool, 3> constrained{false, false, false};
  /// Region flag maintained by carving: true while the triangle belongs to
  /// the meshed domain. Ghost triangles are never inside.
  bool inside = true;
  bool dead = false;

  bool is_ghost() const { return v[2] == kGhost; }
  /// Local index (0..2) of vertex `u`, or -1.
  int index_of(VertIndex u) const {
    for (int i = 0; i < 3; ++i) {
      if (v[i] == u) return i;
    }
    return -1;
  }
};

/// Result of point location.
struct LocateResult {
  enum class Kind {
    kInside,      ///< strictly inside a finite triangle
    kOnEdge,      ///< on the interior of edge `edge` of triangle `tri`
    kOnVertex,    ///< coincides with vertex v[edge] of triangle `tri`
    kOutside,     ///< outside the convex hull; `tri` is a ghost triangle
  };
  Kind kind = Kind::kInside;
  TriIndex tri = kNoTri;
  int edge = 0;  ///< meaning depends on kind (edge index or vertex slot)
};

/// Delaunay triangulation with incremental Bowyer-Watson insertion,
/// constrained edges, and region carving.
///
/// The structure is a topological sphere: in addition to the finite
/// triangles, a ring of ghost triangles (incident to the virtual vertex
/// kGhost) covers the outer face. This removes every hull special case from
/// insertion: a point outside the current hull simply has ghost triangles in
/// its cavity.
///
/// Storage is structure-of-arrays over chunked grow-only arenas
/// (delaunay/chunked.hpp): vertex coordinates, triangle connectivity
/// (`tri_v_`), adjacency (`tri_n_`), and a packed per-triangle flag byte
/// each live in their own arena. 25 bytes per triangle slot (vs 32 for the
/// old array-of-structs record) and no reallocation spikes. Triangle ids
/// are never reused within one triangulation run, so the id sequence — and
/// through it the merged-mesh output — is identical to the old layout.
class DelaunayMesh {
 public:
  DelaunayMesh() = default;

  /// Number of live finite triangles.
  std::size_t triangle_count() const { return live_finite_; }
  /// Number of live finite triangles marked inside the domain.
  std::size_t inside_triangle_count() const;
  std::size_t point_count() const { return points_.size(); }

  Vec2 point(VertIndex v) const { return points_[static_cast<size_t>(v)]; }

  /// Total triangle slots including dead and ghost entries; callers filter
  /// with is_live_finite(). Index stability: triangle ids are never reused
  /// within one triangulation run.
  std::size_t triangle_slots() const { return tri_v_.size(); }

  /// Value snapshot of triangle t (dead and ghost slots included).
  MeshTri tri(TriIndex t) const {
    const auto i = static_cast<std::size_t>(t);
    MeshTri m;
    m.v = tri_v_[i];
    m.n = tri_n_[i];
    const std::uint8_t f = tri_flags_[i];
    m.constrained = {(f & kConstrained0) != 0, (f & kConstrained1) != 0,
                     (f & kConstrained2) != 0};
    m.inside = (f & kInside) != 0;
    m.dead = (f & kDead) != 0;
    return m;
  }

  /// Override the region flag of a triangle (used by the decomposition's
  /// circumcenter ownership rule and by global carving).
  void set_inside(TriIndex t, bool inside) {
    set_flag(t, kInside, inside);
  }

  bool is_live_finite(TriIndex t) const {
    const auto i = static_cast<std::size_t>(t);
    return (tri_flags_[i] & kDead) == 0 && tri_v_[i][2] != kGhost;
  }

  /// Initialize from at least two distinct points; returns false if all
  /// input points are collinear (no 2D triangulation exists).
  /// Points are inserted in the given order — pre-sorting them (x-sorted, as
  /// the paper maintains through every decomposition step) makes the
  /// walk-from-previous point location near O(1) per insertion.
  /// If `ids` is non-null it receives, for each input position, the vertex
  /// index assigned in the mesh (duplicates map to the first occurrence).
  bool triangulate(const std::vector<Vec2>& pts,
                   std::vector<VertIndex>* ids = nullptr);

  /// Insert one point. Returns the vertex index (an existing index if the
  /// point duplicates a present vertex). `respect_constraints` stops the
  /// cavity from crossing constrained edges (required once segments exist).
  /// `hint` seeds the locate walk (pass a triangle near/containing p when
  /// the caller already walked there, e.g. Ruppert's circumcenter walk);
  /// kNoTri falls back to the last touched triangle.
  VertIndex insert_point(Vec2 p, bool respect_constraints,
                         TriIndex hint = kNoTri);

  /// Insert a point known to lie in the interior of constrained edge
  /// `edge` of triangle `t`. Splits the constraint into two constrained
  /// subedges. Returns the new vertex index.
  VertIndex insert_point_on_edge(Vec2 p, TriIndex t, int edge);

  /// Force edge (u, w) into the triangulation (constrained Delaunay): removes
  /// crossing edges and retriangulates both side polygons, then marks the
  /// edge constrained. Existing constrained edges must not cross it; input
  /// vertices lying exactly on the segment split it automatically.
  void insert_segment(VertIndex u, VertIndex w);

  /// Locate point p starting from triangle `hint` (or the last touched
  /// triangle when kNoTri).
  LocateResult locate(Vec2 p, TriIndex hint = kNoTri) const;

  /// Find the triangle/edge pair for directed edge (u, w), or kNoTri.
  std::pair<TriIndex, int> find_edge(VertIndex u, VertIndex w) const;

  /// Mark triangles outside the outer boundary and inside holes as
  /// !inside, flooding from ghost triangles / hole seeds and stopping at
  /// constrained edges.
  void carve(const std::vector<Vec2>& hole_seeds);

  /// Some incident live triangle of v (kNoTri if isolated, which cannot
  /// happen after triangulate()).
  TriIndex incident_triangle(VertIndex v) const {
    return vert_tri_[static_cast<size_t>(v)];
  }

  /// True if vertex v was present in the original input (not a Steiner
  /// point added by refinement). Valid after triangulate().
  bool is_input_vertex(VertIndex v) const {
    return static_cast<std::size_t>(v) < input_point_count_;
  }
  std::size_t input_point_count() const { return input_point_count_; }

  /// Visit each live finite triangle index.
  template <typename Fn>
  void for_each_triangle(Fn&& fn) const {
    for (TriIndex t = 0; t < static_cast<TriIndex>(tri_v_.size()); ++t) {
      if (is_live_finite(t)) fn(t);
    }
  }

  /// Validate internal adjacency/orientation invariants (tests only; O(n)).
  bool check_topology() const;
  /// Validate the (constrained) Delaunay property of every inside edge
  /// (tests only; O(n)).
  bool check_delaunay() const;

  /// Test-only backdoor (defined in tests/test_audit.cpp): the audit tests
  /// corrupt triangles and points through it to prove audit_delaunay()
  /// detects each defect class. Never used by library code.
  struct TestAccess;

 private:
  friend class RuppertRefiner;
  /// The intra-rank parallel construction engine (parallel_insert.hpp):
  /// phase A reads the mesh from worker threads while it is frozen, phase B
  /// replays speculated cavities through the same mutations
  /// insert_into_cavity performs. See that header for the phase protocol.
  friend class ParallelInserter;

  // Flag byte layout (tri_flags_): three per-edge constraint bits aligned
  // with tri_n_, the carve region bit, and the tombstone bit.
  static constexpr std::uint8_t kConstrained0 = 1u << 0;
  static constexpr std::uint8_t kConstrained1 = 1u << 1;
  static constexpr std::uint8_t kConstrained2 = 1u << 2;
  static constexpr std::uint8_t kInside = 1u << 3;
  static constexpr std::uint8_t kDead = 1u << 4;
  static constexpr std::uint8_t kConstrainedMask =
      kConstrained0 | kConstrained1 | kConstrained2;

  // -- SoA accessors (the only paths to the arenas; friends use these) -----
  std::array<VertIndex, 3>& tv(TriIndex t) {
    return tri_v_[static_cast<std::size_t>(t)];
  }
  const std::array<VertIndex, 3>& tv(TriIndex t) const {
    return tri_v_[static_cast<std::size_t>(t)];
  }
  std::array<TriIndex, 3>& tn(TriIndex t) {
    return tri_n_[static_cast<std::size_t>(t)];
  }
  const std::array<TriIndex, 3>& tn(TriIndex t) const {
    return tri_n_[static_cast<std::size_t>(t)];
  }
  bool tri_dead(TriIndex t) const {
    return (tri_flags_[static_cast<std::size_t>(t)] & kDead) != 0;
  }
  bool tri_ghost(TriIndex t) const { return tv(t)[2] == kGhost; }
  bool tri_inside(TriIndex t) const {
    return (tri_flags_[static_cast<std::size_t>(t)] & kInside) != 0;
  }
  bool tri_constrained(TriIndex t, int edge) const {
    return (tri_flags_[static_cast<std::size_t>(t)] &
            (kConstrained0 << edge)) != 0;
  }
  void set_flag(TriIndex t, std::uint8_t bit, bool on) {
    std::uint8_t& f = tri_flags_[static_cast<std::size_t>(t)];
    f = on ? static_cast<std::uint8_t>(f | bit)
           : static_cast<std::uint8_t>(f & ~bit);
  }
  void set_constrained(TriIndex t, int edge, bool on) {
    set_flag(t, static_cast<std::uint8_t>(kConstrained0 << edge), on);
  }
  int index_of(TriIndex t, VertIndex u) const {
    const auto& v = tv(t);
    for (int i = 0; i < 3; ++i) {
      if (v[i] == u) return i;
    }
    return -1;
  }

  TriIndex new_tri();
  std::uint32_t next_rand() const;
  void kill_tri(TriIndex t);
  void link(TriIndex t, int edge, TriIndex u, int uedge);
  void set_vert_tri(TriIndex t);

  /// True if p lies in the circumdisk of triangle t (half-plane test for
  /// ghosts). Exact.
  bool in_cavity(TriIndex t, Vec2 p) const;

  /// Bowyer-Watson cavity insertion. `seeds` are the (at most two) triangles
  /// already known to be in the cavity. Returns the new vertex. All scratch
  /// state lives in the cavity arena below: steady-state insertion performs
  /// no heap allocation beyond the amortized growth of the mesh arrays.
  VertIndex insert_into_cavity(Vec2 p, const TriIndex* seeds,
                               std::size_t nseeds, bool respect_constraints);

  /// Replace diagonal (a, b) of the strictly convex quad around edge `edge`
  /// of t with the opposite diagonal. Both incident triangles must be finite.
  void flip_edge(TriIndex t, int edge);

  /// Restore the (constrained) Delaunay property by flip propagation
  /// starting from the given edge.
  void legalize_edge(TriIndex t, int edge);

  // SoA arenas (see class comment).
  ChunkedArray<Vec2> points_;
  ChunkedArray<std::array<VertIndex, 3>> tri_v_;
  ChunkedArray<std::array<TriIndex, 3>> tri_n_;
  ChunkedArray<std::uint8_t> tri_flags_;
  ChunkedArray<TriIndex> vert_tri_;
  std::size_t live_finite_ = 0;
  std::size_t input_point_count_ = 0;
  /// Walk-hint cache. Shared-state discipline under the parallel engine:
  /// only the committing (main) thread reads or writes it; speculating
  /// workers carry their own hints (parallel_insert.hpp).
  mutable TriIndex last_tri_ AERO_SHARED_STATE("main thread only") = kNoTri;
  /// Stochastic-walk PRNG state (see next_rand in mesh.cpp). Per-mesh so a
  /// triangulation's result never depends on process history; under the
  /// parallel engine it is consumed only by main-thread commits (workers
  /// seed a local generator per point).
  mutable std::uint32_t rand_state_
      AERO_SHARED_STATE("main thread only") = 0x9d2c5680u;

  /// One directed edge of the cavity boundary cycle (see insert_into_cavity).
  struct CavityEdge {
    VertIndex a, b;
    TriIndex outside;
    int outside_edge;
    bool constrained;
    bool inside_region;
  };

  // Cavity arena: grow-only scratch owned by the mesh and *cleared, never
  // freed* between insertions, so the Bowyer-Watson steady state touches the
  // allocator only when an insert outgrows every previous one. `fan_start_`
  // is a vertex-indexed map (slot v+1, so kGhost lands at 0) from a boundary
  // edge's start vertex to its fresh triangle; entries touched by an insert
  // are reset on the way out, keeping resets O(cavity), not O(vertices).
  std::vector<TriIndex> cavity_;
  std::vector<std::uint8_t> in_cavity_mark_;
  std::vector<TriIndex> cavity_stack_;
  std::vector<CavityEdge> boundary_;
  std::vector<TriIndex> fresh_;
  std::vector<TriIndex> fan_start_;
  std::vector<std::pair<TriIndex, int>> legalize_stack_;
};

}  // namespace aero
