#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/vec2.hpp"
#include "obs/annotations.hpp"

namespace aero {

/// Vertex index. kGhost denotes the single topological vertex "at infinity"
/// that closes the triangulation into a sphere; every convex-hull edge is
/// shared between a finite triangle and a ghost triangle incident to kGhost.
using VertIndex = std::int32_t;
using TriIndex = std::int32_t;
inline constexpr VertIndex kGhost = -1;
inline constexpr TriIndex kNoTri = -1;

/// A triangle of the mesh. Finite triangles store their vertices in
/// counter-clockwise order. Ghost triangles have v[2] == kGhost and
/// (v[0], v[1]) traversing the convex hull so that the finite interior is on
/// the right of v[0]->v[1] (i.e. the matching finite triangle owns the
/// directed hull edge (v[1], v[0])).
struct MeshTri {
  std::array<VertIndex, 3> v{kGhost, kGhost, kGhost};
  /// Neighbor across the edge opposite v[i]; edge i is (v[i+1], v[i+2]).
  std::array<TriIndex, 3> n{kNoTri, kNoTri, kNoTri};
  /// Per-edge constraint marks, aligned with `n`.
  std::array<bool, 3> constrained{false, false, false};
  /// Region flag maintained by carving: true while the triangle belongs to
  /// the meshed domain. Ghost triangles are never inside.
  bool inside = true;
  bool dead = false;

  bool is_ghost() const { return v[2] == kGhost; }
  /// Local index (0..2) of vertex `u`, or -1.
  int index_of(VertIndex u) const {
    for (int i = 0; i < 3; ++i) {
      if (v[i] == u) return i;
    }
    return -1;
  }
};

/// Result of point location.
struct LocateResult {
  enum class Kind {
    kInside,      ///< strictly inside a finite triangle
    kOnEdge,      ///< on the interior of edge `edge` of triangle `tri`
    kOnVertex,    ///< coincides with vertex v[edge] of triangle `tri`
    kOutside,     ///< outside the convex hull; `tri` is a ghost triangle
  };
  Kind kind = Kind::kInside;
  TriIndex tri = kNoTri;
  int edge = 0;  ///< meaning depends on kind (edge index or vertex slot)
};

/// Delaunay triangulation with incremental Bowyer-Watson insertion,
/// constrained edges, and region carving.
///
/// The structure is a topological sphere: in addition to the finite
/// triangles, a ring of ghost triangles (incident to the virtual vertex
/// kGhost) covers the outer face. This removes every hull special case from
/// insertion: a point outside the current hull simply has ghost triangles in
/// its cavity.
class DelaunayMesh {
 public:
  DelaunayMesh() = default;

  /// Number of live finite triangles.
  std::size_t triangle_count() const { return live_finite_; }
  /// Number of live finite triangles marked inside the domain.
  std::size_t inside_triangle_count() const;
  std::size_t point_count() const { return points_.size(); }

  const std::vector<Vec2>& points() const { return points_; }
  Vec2 point(VertIndex v) const { return points_[static_cast<size_t>(v)]; }

  /// All triangle storage including dead and ghost entries; callers filter
  /// with is_live_finite(). Index stability: triangle ids are never reused
  /// within one triangulation run.
  const std::vector<MeshTri>& triangles() const { return tris_; }
  const MeshTri& tri(TriIndex t) const { return tris_[static_cast<size_t>(t)]; }

  /// Override the region flag of a triangle (used by the decomposition's
  /// circumcenter ownership rule and by global carving).
  void set_inside(TriIndex t, bool inside) {
    tris_[static_cast<size_t>(t)].inside = inside;
  }

  bool is_live_finite(TriIndex t) const {
    const MeshTri& mt = tris_[static_cast<size_t>(t)];
    return !mt.dead && !mt.is_ghost();
  }

  /// Initialize from at least two distinct points; returns false if all
  /// input points are collinear (no 2D triangulation exists).
  /// Points are inserted in the given order — pre-sorting them (x-sorted, as
  /// the paper maintains through every decomposition step) makes the
  /// walk-from-previous point location near O(1) per insertion.
  /// If `ids` is non-null it receives, for each input position, the vertex
  /// index assigned in the mesh (duplicates map to the first occurrence).
  bool triangulate(const std::vector<Vec2>& pts,
                   std::vector<VertIndex>* ids = nullptr);

  /// Insert one point. Returns the vertex index (an existing index if the
  /// point duplicates a present vertex). `respect_constraints` stops the
  /// cavity from crossing constrained edges (required once segments exist).
  /// `hint` seeds the locate walk (pass a triangle near/containing p when
  /// the caller already walked there, e.g. Ruppert's circumcenter walk);
  /// kNoTri falls back to the last touched triangle.
  VertIndex insert_point(Vec2 p, bool respect_constraints,
                         TriIndex hint = kNoTri);

  /// Insert a point known to lie in the interior of constrained edge
  /// `edge` of triangle `t`. Splits the constraint into two constrained
  /// subedges. Returns the new vertex index.
  VertIndex insert_point_on_edge(Vec2 p, TriIndex t, int edge);

  /// Force edge (u, w) into the triangulation (constrained Delaunay): removes
  /// crossing edges and retriangulates both side polygons, then marks the
  /// edge constrained. Existing constrained edges must not cross it; input
  /// vertices lying exactly on the segment split it automatically.
  void insert_segment(VertIndex u, VertIndex w);

  /// Locate point p starting from triangle `hint` (or the last touched
  /// triangle when kNoTri).
  LocateResult locate(Vec2 p, TriIndex hint = kNoTri) const;

  /// Find the triangle/edge pair for directed edge (u, w), or kNoTri.
  std::pair<TriIndex, int> find_edge(VertIndex u, VertIndex w) const;

  /// Mark triangles outside the outer boundary and inside holes as
  /// !inside, flooding from ghost triangles / hole seeds and stopping at
  /// constrained edges.
  void carve(const std::vector<Vec2>& hole_seeds);

  /// Some incident live triangle of v (kNoTri if isolated, which cannot
  /// happen after triangulate()).
  TriIndex incident_triangle(VertIndex v) const {
    return vert_tri_[static_cast<size_t>(v)];
  }

  /// True if vertex v was present in the original input (not a Steiner
  /// point added by refinement). Valid after triangulate().
  bool is_input_vertex(VertIndex v) const {
    return static_cast<std::size_t>(v) < input_point_count_;
  }
  std::size_t input_point_count() const { return input_point_count_; }

  /// Visit each live finite triangle index.
  template <typename Fn>
  void for_each_triangle(Fn&& fn) const {
    for (TriIndex t = 0; t < static_cast<TriIndex>(tris_.size()); ++t) {
      if (is_live_finite(t)) fn(t);
    }
  }

  /// Validate internal adjacency/orientation invariants (tests only; O(n)).
  bool check_topology() const;
  /// Validate the (constrained) Delaunay property of every inside edge
  /// (tests only; O(n)).
  bool check_delaunay() const;

  /// Test-only backdoor (defined in tests/test_audit.cpp): the audit tests
  /// corrupt triangles and points through it to prove audit_delaunay()
  /// detects each defect class. Never used by library code.
  struct TestAccess;

 private:
  friend class RuppertRefiner;
  /// The intra-rank parallel construction engine (parallel_insert.hpp):
  /// phase A reads the mesh from worker threads while it is frozen, phase B
  /// replays speculated cavities through the same mutations
  /// insert_into_cavity performs. See that header for the phase protocol.
  friend class ParallelInserter;

  TriIndex new_tri();
  std::uint32_t next_rand() const;
  void kill_tri(TriIndex t);
  void link(TriIndex t, int edge, TriIndex u, int uedge);
  void set_vert_tri(TriIndex t);

  /// True if p lies in the circumdisk of triangle t (half-plane test for
  /// ghosts). Exact.
  bool in_cavity(TriIndex t, Vec2 p) const;

  /// Bowyer-Watson cavity insertion. `seeds` are the (at most two) triangles
  /// already known to be in the cavity. Returns the new vertex. All scratch
  /// state lives in the cavity arena below: steady-state insertion performs
  /// no heap allocation beyond the amortized growth of the mesh arrays.
  VertIndex insert_into_cavity(Vec2 p, const TriIndex* seeds,
                               std::size_t nseeds, bool respect_constraints);

  /// Replace diagonal (a, b) of the strictly convex quad around edge `edge`
  /// of t with the opposite diagonal. Both incident triangles must be finite.
  void flip_edge(TriIndex t, int edge);

  /// Restore the (constrained) Delaunay property by flip propagation
  /// starting from the given edge.
  void legalize_edge(TriIndex t, int edge);

  std::vector<Vec2> points_;
  std::vector<MeshTri> tris_;
  std::vector<TriIndex> vert_tri_;
  std::size_t live_finite_ = 0;
  std::size_t input_point_count_ = 0;
  /// Walk-hint cache. Shared-state discipline under the parallel engine:
  /// only the committing (main) thread reads or writes it; speculating
  /// workers carry their own hints (parallel_insert.hpp).
  mutable TriIndex last_tri_ AERO_SHARED_STATE("main thread only") = kNoTri;
  /// Stochastic-walk PRNG state (see next_rand in mesh.cpp). Per-mesh so a
  /// triangulation's result never depends on process history; under the
  /// parallel engine it is consumed only by main-thread commits (workers
  /// seed a local generator per point).
  mutable std::uint32_t rand_state_
      AERO_SHARED_STATE("main thread only") = 0x9d2c5680u;

  /// One directed edge of the cavity boundary cycle (see insert_into_cavity).
  struct CavityEdge {
    VertIndex a, b;
    TriIndex outside;
    int outside_edge;
    bool constrained;
    bool inside_region;
  };

  // Cavity arena: grow-only scratch owned by the mesh and *cleared, never
  // freed* between insertions, so the Bowyer-Watson steady state touches the
  // allocator only when an insert outgrows every previous one. `fan_start_`
  // is a vertex-indexed map (slot v+1, so kGhost lands at 0) from a boundary
  // edge's start vertex to its fresh triangle; entries touched by an insert
  // are reset on the way out, keeping resets O(cavity), not O(vertices).
  std::vector<TriIndex> cavity_;
  std::vector<std::uint8_t> in_cavity_mark_;
  std::vector<TriIndex> cavity_stack_;
  std::vector<CavityEdge> boundary_;
  std::vector<TriIndex> fresh_;
  std::vector<TriIndex> fan_start_;
  std::vector<std::pair<TriIndex, int>> legalize_stack_;
};

}  // namespace aero
