#include "delaunay/triangulator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "delaunay/brio.hpp"
#include "obs/trace.hpp"

namespace aero {

TriangulateResult triangulate(const Pslg& pslg,
                              const TriangulateOptions& opts) {
  AERO_TRACE_SPAN("delaunay", "triangulate");
  TriangulateResult out;

  // Determine insertion order. Triangle sorts its input by x-coordinate on
  // invocation; when the caller guarantees sortedness we skip this, which is
  // exactly the optimization the paper applies after its decompositions.
  // kBrio instead uses the randomized-round + Hilbert-curve order of
  // delaunay/brio.hpp — better locate locality on large unsorted clouds.
  const InsertionOrder order =
      opts.assume_sorted ? InsertionOrder::kInput : opts.order;
  std::vector<std::uint32_t> perm;
  if (order == InsertionOrder::kBrio) {
    perm = brio_order(pslg.points);
  } else {
    perm.resize(pslg.points.size());
    std::iota(perm.begin(), perm.end(), 0u);
    if (order == InsertionOrder::kXSorted) {
      std::sort(perm.begin(), perm.end(),
                [&pslg](std::uint32_t a, std::uint32_t b) {
                  return LessXY{}(pslg.points[a], pslg.points[b]);
                });
    }
  }
  std::vector<Vec2> ordered(pslg.points.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    ordered[i] = pslg.points[perm[i]];
  }

  std::vector<VertIndex> ids_by_position;
  if (!out.mesh.triangulate(ordered, &ids_by_position)) {
    throw std::invalid_argument(
        "triangulate: input has fewer than 3 non-collinear points");
  }

  // Undo the permutation so vertex_ids is indexed by original point index.
  out.vertex_ids.assign(pslg.points.size(), kGhost);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out.vertex_ids[perm[i]] = ids_by_position[i];
  }

  if (opts.constrained) {
    for (const auto& [a, b] : pslg.segments) {
      out.mesh.insert_segment(out.vertex_ids[a], out.vertex_ids[b]);
    }
  }
  if (opts.carve) {
    out.mesh.carve(pslg.holes);
  }
  if (opts.refine) {
    RuppertRefiner refiner(out.mesh, opts.refine_options);
    out.refine_stats = refiner.refine();
  }
  return out;
}

TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     bool assume_sorted) {
  Pslg pslg;
  pslg.points = points;
  TriangulateOptions opts;
  opts.constrained = false;
  opts.carve = false;
  opts.assume_sorted = assume_sorted;
  return triangulate(pslg, opts);
}

TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     InsertionOrder order) {
  Pslg pslg;
  pslg.points = points;
  TriangulateOptions opts;
  opts.constrained = false;
  opts.carve = false;
  opts.order = order;
  return triangulate(pslg, opts);
}

}  // namespace aero
