#include "delaunay/triangulator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "delaunay/brio.hpp"
#include "delaunay/parallel_insert.hpp"
#include "obs/trace.hpp"

namespace aero {

namespace {

/// Below this, the windowed engine's bootstrap would swallow most of the
/// cloud anyway; plain sequential insertion wins.
constexpr std::size_t kParallelMinPoints =
    4 * ParallelInserter::kBootstrapPoints;

}  // namespace

TriangulateResult triangulate(const Pslg& pslg,
                              const TriangulateOptions& opts) {
  AERO_TRACE_SPAN("delaunay", "triangulate");
  TriangulateResult out;

  // Determine insertion order. Triangle sorts its input by x-coordinate on
  // invocation; when the caller guarantees sortedness we skip this, which is
  // exactly the optimization the paper applies after its decompositions.
  // kBrio instead uses the randomized-round + Hilbert-curve order of
  // delaunay/brio.hpp — better locate locality on large unsorted clouds.
  // A thread request on the default order upgrades it to the scatter order,
  // the only one whose windows parallelize without constant conflicts.
  InsertionOrder order =
      opts.assume_sorted ? InsertionOrder::kInput : opts.order;
  const int threads = std::max(1, opts.threads);
  if (threads > 1 && order == InsertionOrder::kXSorted &&
      pslg.points.size() >= kParallelMinPoints) {
    order = InsertionOrder::kScatter;
  }
  std::vector<std::uint32_t> perm;
  if (order == InsertionOrder::kBrio) {
    perm = brio_order(pslg.points);
  } else if (order == InsertionOrder::kScatter) {
    perm = brio_scatter_order(pslg.points);
  } else {
    perm.resize(pslg.points.size());
    std::iota(perm.begin(), perm.end(), 0u);
    if (order == InsertionOrder::kXSorted) {
      std::sort(perm.begin(), perm.end(),
                [&pslg](std::uint32_t a, std::uint32_t b) {
                  return LessXY{}(pslg.points[a], pslg.points[b]);
                });
    }
  }
  std::vector<Vec2> ordered(pslg.points.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    ordered[i] = pslg.points[perm[i]];
  }

  std::vector<VertIndex> ids_by_position;
  bool built;
  if (order == InsertionOrder::kScatter &&
      ordered.size() >= kParallelMinPoints) {
    // The windowed speculate/commit engine. Engaged for the scatter order at
    // *every* thread count: consecutive scatter points have no walk
    // locality, so even the sequential path needs the engine's committed-
    // vertex hint grid — and the T=1 baseline the scaling bench compares
    // against then runs the identical algorithm.
    ParallelInserter engine(out.mesh, threads);
    built = engine.run(ordered, &ids_by_position);
  } else {
    built = out.mesh.triangulate(ordered, &ids_by_position);
  }
  if (!built) {
    throw std::invalid_argument(
        "triangulate: input has fewer than 3 non-collinear points");
  }

  // Undo the permutation so vertex_ids is indexed by original point index.
  out.vertex_ids.assign(pslg.points.size(), kGhost);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out.vertex_ids[perm[i]] = ids_by_position[i];
  }

  if (opts.constrained) {
    for (const auto& [a, b] : pslg.segments) {
      out.mesh.insert_segment(out.vertex_ids[a], out.vertex_ids[b]);
    }
  }
  if (opts.carve) {
    out.mesh.carve(pslg.holes);
  }
  if (opts.refine) {
    RuppertRefiner refiner(out.mesh, opts.refine_options);
    out.refine_stats = refiner.refine();
  }
  return out;
}

TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     bool assume_sorted) {
  Pslg pslg;
  pslg.points = points;
  TriangulateOptions opts;
  opts.constrained = false;
  opts.carve = false;
  opts.assume_sorted = assume_sorted;
  return triangulate(pslg, opts);
}

TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     InsertionOrder order) {
  Pslg pslg;
  pslg.points = points;
  TriangulateOptions opts;
  opts.constrained = false;
  opts.carve = false;
  opts.order = order;
  return triangulate(pslg, opts);
}

TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     InsertionOrder order, int threads) {
  Pslg pslg;
  pslg.points = points;
  TriangulateOptions opts;
  opts.constrained = false;
  opts.carve = false;
  opts.order = order;
  opts.threads = threads;
  return triangulate(pslg, opts);
}

}  // namespace aero
