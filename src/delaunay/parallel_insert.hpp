#pragma once

// Intra-rank parallel Bowyer-Watson construction.
//
// The insertion sequence is fixed up front (the caller passes the already
// permuted point array), so the triangulation to produce is *defined* before
// any thread runs: plain Bowyer-Watson construction never legalizes and its
// cavity is the exact-predicate set {t : p strictly in circumdisk(t)}, a pure
// function of the committed mesh and the point. Parallelism therefore cannot
// be allowed to change the answer -- only to precompute it.
//
// The engine runs speculate-parallel / commit-serial windows over the
// insertion sequence:
//
//   Phase A (parallel, read-only): the worker team speculates every point of
//   the current window against the frozen mesh -- grid-hinted locate walk,
//   cavity DFS with exact in-circle predicates, boundary-cycle collection --
//   into per-thread scratch. No thread writes the mesh, the walk PRNG is
//   derived per point (splitmix64 of the point's sequence index), and the
//   visit marks are per-thread, so a speculation's content is a pure function
//   of (frozen mesh, point index): identical for every thread count.
//
//   Phase B (serial, main thread): commit in sequence order. A speculation is
//   valid iff every triangle it read (cavity members and boundary-outside
//   neighbors) is still alive and untouched by earlier commits of the same
//   window; a valid one replays its recorded star retriangulation with zero
//   predicate work, an invalidated one falls back to the ordinary sequential
//   insert. Conflicts between two points of one window thus resolve by the
//   deterministic priority the ISSUE asks for -- the lower sequence index
//   commits speculatively, the higher one re-inserts against the updated
//   mesh -- and the result is bit-identical to inserting the same sequence
//   sequentially, for every input (including cocircular and duplicate
//   degeneracies, which simply invalidate and take the fallback).
//
// The two phases are separated by a std::barrier, which gives every phase-A
// read a happens-before edge from the previous phase-B writes and vice
// versa: the mesh needs no locks and no atomics, and the engine is clean
// under TSan by construction (the kernel_tsan ctest entry pins this).
//
// Window sizing and the speculation schedule depend only on committed
// progress, never on the thread count, so T=1 and T=8 runs execute the same
// speculations and the same commits. The T=1 path runs the identical code
// inline (no threads, no barrier) and is the baseline bench_kernel's
// strong-scaling case measures against.

#include <cstdint>
#include <vector>

#include "delaunay/mesh.hpp"
#include "geom/bbox.hpp"
#include "obs/annotations.hpp"

namespace aero {

/// Deterministic multi-threaded incremental construction over a fixed
/// insertion sequence. Friend of DelaunayMesh: phase B replays recorded
/// cavities through the same mutation sequence insert_into_cavity performs.
class ParallelInserter {
 public:
  /// Counters for benches/tests: how speculation fared.
  struct Stats {
    std::size_t windows = 0;
    std::size_t speculated = 0;   ///< points speculated in phase A
    std::size_t replayed = 0;     ///< valid speculations committed by replay
    std::size_t conflicts = 0;    ///< invalidated by an earlier commit
    std::size_t fallbacks = 0;    ///< walk failures + conflicts, re-inserted
    std::size_t duplicates = 0;   ///< merged onto an existing vertex
  };

  /// `threads` <= 1 runs the identical windowed algorithm inline.
  ParallelInserter(DelaunayMesh& mesh, int threads);

  /// Triangulate `ordered` (already permuted into insertion order) into the
  /// mesh, exactly as mesh.triangulate(ordered, ids) would, including the
  /// duplicate-merging `ids` output. Returns false if all points are
  /// collinear. The mesh is reset first (same contract as triangulate()).
  bool run(const std::vector<Vec2>& ordered, std::vector<VertIndex>* ids);

  const Stats& stats() const { return stats_; }

  /// Sequential prefix bootstrapped before the windowed loop starts; also
  /// the minimum cloud size for which triangulate() engages this engine.
  static constexpr std::size_t kBootstrapPoints = 1024;

 private:
  /// One directed boundary edge of a speculated cavity (the subset of
  /// DelaunayMesh::CavityEdge plain construction needs: constraints do not
  /// exist yet, and during construction every region flag is `inside`).
  struct SpecEdge {
    VertIndex a, b;
    TriIndex outside;
    int outside_edge;
    bool inside_region;
  };

  /// Phase-A result for one point of the window.
  struct Spec {
    enum class Kind : std::uint8_t {
      kFailed,     ///< walk did not terminate cleanly; commit re-inserts
      kDuplicate,  ///< coincides with vertex `dup`
      kCavity,     ///< recorded cavity + boundary ready for replay
    };
    Kind kind = Kind::kFailed;
    VertIndex dup = kGhost;
    std::vector<TriIndex> cavity;
    std::vector<SpecEdge> boundary;
  };

  /// Per-worker read-only scratch (epoch-stamped visit marks + DFS stack).
  struct WorkerScratch {
    std::vector<std::uint32_t> mark;
    std::uint32_t epoch = 0;
    std::vector<TriIndex> stack;
  };

  void build_grid(const std::vector<Vec2>& ordered);
  std::size_t grid_cell(Vec2 p) const;
  void grid_note(Vec2 p, VertIndex v);
  VertIndex grid_lookup(Vec2 p) const;

  /// Read-only stochastic walk (mirrors DelaunayMesh::locate) with a local
  /// PRNG; returns false when the guard trips (spec falls back).
  bool spec_locate(Vec2 p, TriIndex start, std::uint32_t& rng,
                   LocateResult& res) const;
  /// Speculate one point into `spec` using this worker's scratch.
  void speculate(Vec2 p, std::uint32_t seq_index, WorkerScratch& ws,
                 Spec& spec) const;
  /// Phase-A body for one worker: speculate window positions
  /// `worker`, `worker + threads_`, ... of [window_begin_, window_end_).
  void speculate_stride(int worker);

  /// True iff every triangle `spec` read is alive and untouched this window.
  bool spec_valid(const Spec& spec) const;
  /// Replay a valid speculation (the star-retriangulation half of
  /// insert_into_cavity, fed from the recorded lists; no predicates).
  VertIndex commit_replay(Vec2 p, const Spec& spec);
  /// Sequential re-insert for failed/invalidated speculations.
  VertIndex commit_fallback(Vec2 p);
  /// Mark the old triangles a commit relinked (neighbors of fresh ids).
  void stamp_neighbors_of_fresh(std::size_t tris_before);

  DelaunayMesh& mesh_;
  const int threads_;
  Stats stats_;

  const std::vector<Vec2>* ordered_ = nullptr;

  // Window control block. Written by the main thread strictly between
  // barrier phases; workers read it only inside phase A. The barrier pair
  // orders every write before every read, so none of this needs atomics.
  std::size_t window_begin_ AERO_SHARED_STATE("written between barriers") = 0;
  std::size_t window_end_ AERO_SHARED_STATE("written between barriers") = 0;
  bool stop_workers_ AERO_SHARED_STATE("written between barriers") = false;
  /// Slot j = window position j; worker-disjoint writes in phase A (reused).
  std::vector<Spec> specs_ AERO_SHARED_STATE("worker-disjoint slots");
  std::vector<WorkerScratch> scratch_;  ///< one per worker, self-owned

  // Commit-side bookkeeping (main thread only).
  std::uint32_t window_id_ = 0;
  std::vector<std::uint32_t> touched_;  ///< tri -> last window that relinked it

  // Committed-vertex hint grid for the locate walk under scatter order
  // (consecutive points are spatially unrelated, so walk-from-last loses
  // its O(1) locality; walk-from-nearest-committed-vertex restores it).
  // Updated at commit (serial), read frozen during phase A.
  BBox2 grid_box_;
  double grid_sx_ = 0.0, grid_sy_ = 0.0;
  std::size_t grid_dim_ = 0;
  std::vector<VertIndex> grid_;
};

}  // namespace aero
