#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>

#include "delaunay/mesh.hpp"

namespace aero {

/// Aggregate quality statistics over the inside triangles of a mesh.
struct MeshStats {
  std::size_t triangles = 0;
  std::size_t vertices = 0;
  double min_angle_deg = 0.0;
  double max_angle_deg = 0.0;
  double max_aspect_ratio = 0.0;
  double max_radius_edge = 0.0;
  double total_area = 0.0;
  double min_area = 0.0;
  double max_area = 0.0;
  /// Histogram of minimum angles in 10-degree bins [0,10), [10,20), ... [50,60].
  std::array<std::size_t, 6> min_angle_histogram{};
};

/// Compute statistics over all live inside triangles.
MeshStats compute_stats(const DelaunayMesh& mesh);

std::ostream& operator<<(std::ostream& os, const MeshStats& s);

}  // namespace aero
