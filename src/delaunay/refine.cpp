#include "delaunay/refine.hpp"

#include <cassert>
#include <cmath>
#include <thread>

#include "geom/predicates.hpp"
#include "geom/predicates_fast.hpp"
#include "geom/triangle_quality.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aero {

RuppertRefiner::RuppertRefiner(DelaunayMesh& mesh, RefineOptions options)
    : mesh_(mesh), opts_(std::move(options)) {}

bool RuppertRefiner::triangle_is_bad(TriIndex t) const {
  const MeshTri& mt = mesh_.tri(t);
  const Vec2 a = mesh_.point(mt.v[0]);
  const Vec2 b = mesh_.point(mt.v[1]);
  const Vec2 c = mesh_.point(mt.v[2]);
  const double area = signed_area(a, b, c);
  if (area > opts_.max_area) return true;
  if (opts_.sizing) {
    const Vec2 centroid{(a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0};
    if (area > opts_.sizing(centroid)) return true;
  }
  if (radius_edge_exceeds(a, b, c, opts_.radius_edge_bound)) {
    // Seditious-edge guard: if the shortest edge joins two shell points of
    // the same small-angle cluster, splitting would ping-pong forever; the
    // triangle's smallest angle is already bounded by the cluster geometry.
    const double lab = distance2(a, b), lbc = distance2(b, c),
                 lca = distance2(c, a);
    VertIndex e0, e1;
    if (lab <= lbc && lab <= lca) {
      e0 = mt.v[0];
      e1 = mt.v[1];
    } else if (lbc <= lca) {
      e0 = mt.v[1];
      e1 = mt.v[2];
    } else {
      e0 = mt.v[2];
      e1 = mt.v[0];
    }
    const VertIndex o0 = shell_origin_[static_cast<size_t>(e0)];
    const VertIndex o1 = shell_origin_[static_cast<size_t>(e1)];
    if (o0 != kGhost && o0 == o1) {
      return false;  // counted by the caller as seditious when it pops
    }
    return true;
  }
  return false;
}

bool RuppertRefiner::edge_is_encroached(TriIndex t, int slot) const {
  const MeshTri& mt = mesh_.tri(t);
  const Vec2 a = mesh_.point(mt.v[(slot + 1) % 3]);
  const Vec2 b = mesh_.point(mt.v[(slot + 2) % 3]);
  // A vertex encroaches iff it lies strictly inside the diametral circle,
  // i.e. it sees the segment under an angle > 90 degrees.
  const auto apex_encroaches = [&](VertIndex v) {
    if (v == kGhost) return false;
    const Vec2 p = mesh_.point(v);
    return (a - p).dot(b - p) < 0.0;
  };
  if (apex_encroaches(mt.v[slot])) return true;
  const MeshTri& mn = mesh_.tri(mt.n[slot]);
  for (int i = 0; i < 3; ++i) {
    if (mn.n[i] == t) return apex_encroaches(mn.v[i]);
  }
  return false;
}

RuppertRefiner::Walk RuppertRefiner::walk_to(Vec2 c, TriIndex t) const {
  Walk w;
  int came_from = -1;
  const std::size_t guard = 4 * mesh_.triangle_slots() + 16;
  for (std::size_t step = 0; step < guard; ++step) {
    const MeshTri& mt = mesh_.tri(t);
    int cross = -1;
    int zeros = 0;
    for (int i = 0; i < 3; ++i) {
      if (i == came_from) continue;
      const double o = orient2d_fast(mesh_.point(mt.v[(i + 1) % 3]),
                                     mesh_.point(mt.v[(i + 2) % 3]), c);
      if (o < 0.0) {
        cross = i;
        break;
      }
      if (o == 0.0) ++zeros;
    }
    if (cross < 0) {
      w.tri = t;
      w.on_vertex = zeros >= 2;
      return w;
    }
    if (mt.constrained[cross]) {
      w.blocked = true;
      w.tri = t;
      w.edge = cross;
      return w;
    }
    const TriIndex nb = mt.n[cross];
    const MeshTri& mn = mesh_.tri(nb);
    if (mn.is_ghost()) {
      // Circumcenter beyond an unconstrained hull edge; treat like a
      // blocking edge so the caller skips this triangle.
      w.blocked = true;
      w.tri = t;
      w.edge = cross;
      return w;
    }
    came_from = -1;
    for (int i = 0; i < 3; ++i) {
      if (mn.n[i] == t) came_from = i;
    }
    t = nb;
  }
  w.blocked = true;  // should not happen; fail safe
  return w;
}

VertIndex RuppertRefiner::split_segment(VertIndex u, VertIndex w) {
  const auto [t, slot] = mesh_.find_edge(u, w);
  if (t == kNoTri || !mesh_.tri(t).constrained[slot]) return kGhost;

  const Vec2 pu = mesh_.point(u);
  const Vec2 pw = mesh_.point(w);
  if (opts_.splittable && !opts_.splittable(pu, pw)) return kGhost;
  const double len = distance(pu, pw);
  if (len == 0.0) return kGhost;

  // Concentric-shell split: measure a power-of-two distance from an input
  // endpoint so successive splits off the same small-angle vertex land on
  // common circles and stop encroaching each other.
  double frac = 0.5;
  VertIndex origin = kGhost;
  const bool u_input = mesh_.is_input_vertex(u);
  const bool w_input = mesh_.is_input_vertex(w);
  if (u_input || w_input) {
    const double d = std::exp2(std::round(std::log2(len * 0.5)));
    if (u_input) {
      frac = d / len;
      origin = u;
    } else {
      frac = 1.0 - d / len;
      origin = w;
    }
    frac = std::clamp(frac, 0.25, 0.75);
  } else {
    // Interior subsegment: inherit the cluster if both ends share one.
    const VertIndex ou = shell_origin_[static_cast<size_t>(u)];
    const VertIndex ow = shell_origin_[static_cast<size_t>(w)];
    if (ou != kGhost && ou == ow) origin = ou;
  }

  const Vec2 p = lerp(pu, pw, frac);
  if (p == pu || p == pw) return kGhost;  // segment shorter than one ulp

  const VertIndex vi = mesh_.insert_point_on_edge(p, t, slot);
  shell_origin_.resize(mesh_.point_count(), kGhost);
  shell_origin_[static_cast<size_t>(vi)] = origin;
  ++stats_.segment_splits;
  ++stats_.steiner_points;
  scan_star(vi);
  return vi;
}

void RuppertRefiner::scan_star(VertIndex v) {
  const TriIndex start = mesh_.incident_triangle(v);
  if (start == kNoTri) return;
  TriIndex t = start;
  do {
    const MeshTri& mt = mesh_.tri(t);
    const int k = mt.index_of(v);
    assert(k >= 0);
    if (!mt.is_ghost() && mt.inside) {
      if (triangle_is_bad(t)) tri_queue_.push_back(t);
      for (int i = 0; i < 3; ++i) {
        if (mt.constrained[i] && edge_is_encroached(t, i)) {
          seg_queue_.emplace_back(mt.v[(i + 1) % 3], mt.v[(i + 2) % 3]);
        }
      }
    }
    t = mt.n[(k + 1) % 3];
  } while (t != start);
}

RefineStats RuppertRefiner::refine() {
  AERO_TRACE_SPAN("delaunay", "ruppert_refine");
  stats_ = RefineStats{};
  shell_origin_.assign(mesh_.point_count(), kGhost);
  seg_queue_.clear();
  tri_queue_.clear();

  // Initial scans. The scan visits live inside triangles in id order; the
  // threaded variant must reproduce that order exactly (the queues drive
  // the insertion sequence, and the refined mesh must not depend on the
  // thread count), so it splits the id space into a fixed chunk count,
  // scans chunks concurrently into per-chunk queues, and concatenates them
  // in chunk order — byte-identical queues, read-only scan.
  const auto scan_one = [this](TriIndex t, std::vector<TriIndex>& tris,
                               std::vector<std::pair<VertIndex, VertIndex>>&
                                   segs) {
    const MeshTri& mt = mesh_.tri(t);
    if (!mt.inside) return;
    if (triangle_is_bad(t)) tris.push_back(t);
    for (int i = 0; i < 3; ++i) {
      if (mt.constrained[i] && edge_is_encroached(t, i)) {
        segs.emplace_back(mt.v[(i + 1) % 3], mt.v[(i + 2) % 3]);
      }
    }
  };
  const auto total = static_cast<TriIndex>(mesh_.triangle_slots());
  const int threads = std::max(1, opts_.threads);
  if (threads > 1 && total >= 16384) {
    constexpr std::size_t kChunks = 64;  // fixed: independent of `threads`
    const auto chunk_len =
        static_cast<TriIndex>((total + kChunks - 1) / kChunks);
    std::vector<std::vector<TriIndex>> chunk_tris(kChunks);
    std::vector<std::vector<std::pair<VertIndex, VertIndex>>> chunk_segs(
        kChunks);
    const auto scan_chunk = [&](std::size_t c) {
      const TriIndex lo = static_cast<TriIndex>(c) * chunk_len;
      const TriIndex hi = std::min<TriIndex>(total, lo + chunk_len);
      for (TriIndex t = lo; t < hi; ++t) {
        if (mesh_.is_live_finite(t)) {
          scan_one(t, chunk_tris[c], chunk_segs[c]);
        }
      }
    };
    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(threads - 1));
    for (int w = 1; w < threads; ++w) {
      team.emplace_back([&, w] {
        for (std::size_t c = static_cast<std::size_t>(w); c < kChunks;
             c += static_cast<std::size_t>(threads)) {
          scan_chunk(c);
        }
      });
    }
    for (std::size_t c = 0; c < kChunks;
         c += static_cast<std::size_t>(threads)) {
      scan_chunk(c);
    }
    for (std::thread& t : team) t.join();
    for (std::size_t c = 0; c < kChunks; ++c) {
      tri_queue_.insert(tri_queue_.end(), chunk_tris[c].begin(),
                        chunk_tris[c].end());
      seg_queue_.insert(seg_queue_.end(), chunk_segs[c].begin(),
                        chunk_segs[c].end());
    }
  } else {
    mesh_.for_each_triangle([&](TriIndex t) {
      scan_one(t, tri_queue_, seg_queue_);
    });
  }

  while (!seg_queue_.empty() || !tri_queue_.empty()) {
    if (stats_.steiner_points >= opts_.max_steiner) {
      stats_.hit_steiner_cap = true;
      break;
    }

    // Encroached segments take priority (Ruppert's ordering).
    if (!seg_queue_.empty()) {
      const auto [u, w] = seg_queue_.back();
      seg_queue_.pop_back();
      const auto [t, slot] = mesh_.find_edge(u, w);
      if (t == kNoTri || !mesh_.tri(t).constrained[slot]) continue;
      if (!edge_is_encroached(t, slot)) continue;
      split_segment(u, w);
      continue;
    }

    const TriIndex t = tri_queue_.back();
    tri_queue_.pop_back();
    if (!mesh_.is_live_finite(t) || !mesh_.tri(t).inside) continue;
    if (!triangle_is_bad(t)) continue;

    const MeshTri& mt = mesh_.tri(t);
    const Vec2 a = mesh_.point(mt.v[0]);
    const Vec2 b = mesh_.point(mt.v[1]);
    const Vec2 c3 = mesh_.point(mt.v[2]);
    const Vec2 cc = circumcenter(a, b, c3);

    const Walk walk = walk_to(cc, t);
    if (walk.blocked) {
      // The circumcenter lies beyond a constrained edge: that edge is
      // (deemed) encroached; split it and revisit the triangle.
      const MeshTri& bt = mesh_.tri(walk.tri);
      if (bt.constrained[walk.edge]) {
        const VertIndex u = bt.v[(walk.edge + 1) % 3];
        const VertIndex w = bt.v[(walk.edge + 2) % 3];
        if (split_segment(u, w) != kGhost) tri_queue_.push_back(t);
      }
      continue;
    }
    if (walk.on_vertex) continue;  // circumcenter duplicates a vertex

    // Ruppert pre-check: would the circumcenter encroach any constrained
    // segment on its cavity boundary? If so, split those segments instead.
    // (Simulated Bowyer-Watson cavity walk, read-only; the scratch vectors
    // are members so the steady state allocates nothing.)
    encroached_.clear();
    {
      precheck_stack_.clear();
      precheck_visited_.clear();
      precheck_stack_.push_back(walk.tri);
      precheck_visited_.push_back(walk.tri);
      auto seen = [this](TriIndex x) {
        for (const TriIndex v : precheck_visited_) {
          if (v == x) return true;
        }
        return false;
      };
      while (!precheck_stack_.empty()) {
        const TriIndex ct = precheck_stack_.back();
        precheck_stack_.pop_back();
        const MeshTri& cm = mesh_.tri(ct);
        for (int i = 0; i < 3; ++i) {
          const TriIndex nb = cm.n[i];
          if (cm.constrained[i]) {
            const Vec2 ea = mesh_.point(cm.v[(i + 1) % 3]);
            const Vec2 eb = mesh_.point(cm.v[(i + 2) % 3]);
            if ((ea - cc).dot(eb - cc) < 0.0) {
              encroached_.emplace_back(cm.v[(i + 1) % 3], cm.v[(i + 2) % 3]);
            }
            continue;
          }
          if (nb == kNoTri || seen(nb)) continue;
          const MeshTri& nm = mesh_.tri(nb);
          if (nm.is_ghost()) continue;
          if (incircle_fast(mesh_.point(nm.v[0]), mesh_.point(nm.v[1]),
                            mesh_.point(nm.v[2]), cc) > 0.0) {
            precheck_visited_.push_back(nb);
            precheck_stack_.push_back(nb);
          }
        }
      }
    }
    if (!encroached_.empty()) {
      bool any = false;
      for (const auto& [u, w] : encroached_) {
        if (split_segment(u, w) != kGhost) any = true;
      }
      if (any) tri_queue_.push_back(t);
      continue;
    }

    // walk_to() already located the triangle containing cc, and the pre-check
    // BFS above already computed the (constraint-respecting) cavity in
    // precheck_visited_ -- every triangle whose circumdisk strictly contains
    // cc, reached from walk.tri. Hand the whole set to the cavity insertion
    // as pre-verified seeds so the incircle tests are not repeated. A short
    // hinted locate still runs first to catch the degenerate placements
    // (circumcenter exactly on a vertex or a constrained edge) that need the
    // duplicate-merging / constraint-splitting paths.
    VertIndex vi;
    const LocateResult loc = mesh_.locate(cc, walk.tri);
    if (loc.kind == LocateResult::Kind::kOnVertex) {
      vi = mesh_.tri(loc.tri).v[loc.edge];
    } else if (loc.kind == LocateResult::Kind::kOutside ||
               (loc.kind == LocateResult::Kind::kOnEdge &&
                mesh_.tri(loc.tri).constrained[loc.edge])) {
      vi = mesh_.insert_point(cc, /*respect_constraints=*/true, walk.tri);
    } else {
      vi = mesh_.insert_into_cavity(cc, precheck_visited_.data(),
                                    precheck_visited_.size(),
                                    /*respect_constraints=*/true);
    }
    if (static_cast<std::size_t>(vi) + 1 == mesh_.point_count()) {
      shell_origin_.resize(mesh_.point_count(), kGhost);
      ++stats_.circumcenters;
      ++stats_.steiner_points;
      scan_star(vi);
    }
  }

  // Flush once per refinement run (not per point): registry lookups lock.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("delaunay.refine_calls").add(1);
  reg.counter("delaunay.steiner_points").add(stats_.steiner_points);
  reg.counter("delaunay.circumcenters").add(stats_.circumcenters);
  if (stats_.hit_steiner_cap) reg.counter("delaunay.steiner_cap_hits").add(1);
  reg.histogram("delaunay.steiner_per_refine")
      .observe(static_cast<double>(stats_.steiner_points));
  return stats_;
}

}  // namespace aero
