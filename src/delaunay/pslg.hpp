#pragma once

#include <cstdint>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// Planar straight-line graph: the input format of the triangulator.
///
/// Mirrors the information content of Triangle's .poly format: a set of
/// vertices, a set of constraining segments between them, and a set of hole
/// seed points (a triangulated region containing a hole point is carved out
/// of the final mesh, as is everything outside the outermost boundary).
struct Pslg {
  std::vector<Vec2> points;
  /// Segments as index pairs into `points`.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> segments;
  /// One interior point per hole.
  std::vector<Vec2> holes;
  /// Optional per-point boundary markers (0 = interior). Empty means all 0.
  std::vector<int> point_markers;

  BBox2 bbox() const {
    BBox2 b;
    for (const Vec2 p : points) b.expand(p);
    return b;
  }
};

}  // namespace aero
