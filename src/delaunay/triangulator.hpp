#pragma once

#include <vector>

#include "delaunay/mesh.hpp"
#include "delaunay/pslg.hpp"
#include "delaunay/refine.hpp"

namespace aero {

/// Insertion-order policy for incremental Delaunay construction. All three
/// orders yield the same Delaunay triangulation for points in general
/// position; for inputs with exactly cocircular quadruples the diagonal
/// choice inside a cocircular polygon can depend on insertion order, which is
/// why kXSorted stays the default (it is the historical, baseline-identical
/// order) and kBrio is opt-in.
enum class InsertionOrder {
  /// Lexicographic (x, then y) sort — Triangle's default, near-O(1) locate
  /// steps because consecutive points are neighbors along the sweep.
  kXSorted,
  /// Biased Randomized Insertion Order with Hilbert-curve locality within
  /// rounds (see delaunay/brio.hpp): randomized-incremental work bounds plus
  /// cache-friendly walks. Preferred for large unsorted clouds.
  kBrio,
  /// Insert in the caller's order (the caller vouches for locality; this is
  /// what `assume_sorted` selects).
  kInput,
  /// BRIO rounds with a deterministic within-round shuffle instead of the
  /// Hilbert sort (delaunay/brio.hpp, brio_scatter_order). This is the
  /// parallel kernel's order: consecutive points are spatially unrelated, so
  /// a speculation window spreads over the whole domain and same-window
  /// cavity conflicts are rare. Construction runs through the windowed
  /// engine (parallel_insert.hpp) whenever this order is selected and the
  /// cloud is large enough -- at every thread count, including 1, so the
  /// single-thread baseline pays the same machinery it is compared against.
  kScatter,
};

/// Options mirroring the Triangle switches the paper relies on.
struct TriangulateOptions {
  /// Insert the PSLG segments (constrained Delaunay). Without this only the
  /// point set is triangulated.
  bool constrained = true;
  /// Remove triangles outside the outer boundary and inside holes.
  bool carve = true;
  /// Run Ruppert refinement after construction.
  bool refine = false;
  RefineOptions refine_options;
  /// Insertion order for the incremental construction.
  InsertionOrder order = InsertionOrder::kXSorted;
  /// The input points are already x-sorted: skip the internal sort (overrides
  /// `order` with kInput). This is the fast path the paper unlocks by
  /// maintaining x-sorted vertex arrays through every decomposition step.
  bool assume_sorted = false;
  /// Threads for the intra-rank parallel construction kernel (1 =
  /// sequential). With the default kXSorted order and a large enough cloud,
  /// threads > 1 upgrades the order to kScatter and runs the deterministic
  /// speculate/commit engine of parallel_insert.hpp; the resulting mesh is
  /// identical for every thread count (same insertion sequence, conflicts
  /// resolved by sequence index). Explicit kBrio/kInput/assume_sorted orders
  /// are honored sequentially (their windows would be spatially clustered
  /// and conflict constantly). Refinement passes the knob through
  /// RefineOptions::threads separately.
  int threads = 1;
};

/// Result bundle of a triangulation run.
struct TriangulateResult {
  DelaunayMesh mesh;
  /// Mesh vertex index for each input point (duplicates merged).
  std::vector<VertIndex> vertex_ids;
  RefineStats refine_stats;
};

/// Triangulate a PSLG: Delaunay construction (+ constrained segments,
/// carving, Ruppert refinement per `opts`). This is the drop-in role that
/// Shewchuk's Triangle plays in the paper.
TriangulateResult triangulate(const Pslg& pslg, const TriangulateOptions& opts);

/// Convenience: plain Delaunay triangulation of a point set.
TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     bool assume_sorted = false);

/// Convenience: plain Delaunay triangulation with an explicit insertion
/// order (the A/B entry point test_kernel.cpp and bench_kernel use to compare
/// kBrio against kXSorted on the same cloud).
TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     InsertionOrder order);

/// Convenience: plain Delaunay triangulation with an explicit order and
/// thread count (the strong-scaling entry point of bench_kernel and the
/// parallel-vs-sequential bit-identity tests).
TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     InsertionOrder order, int threads);

}  // namespace aero
