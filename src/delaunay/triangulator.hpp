#pragma once

#include <vector>

#include "delaunay/mesh.hpp"
#include "delaunay/pslg.hpp"
#include "delaunay/refine.hpp"

namespace aero {

/// Options mirroring the Triangle switches the paper relies on.
struct TriangulateOptions {
  /// Insert the PSLG segments (constrained Delaunay). Without this only the
  /// point set is triangulated.
  bool constrained = true;
  /// Remove triangles outside the outer boundary and inside holes.
  bool carve = true;
  /// Run Ruppert refinement after construction.
  bool refine = false;
  RefineOptions refine_options;
  /// The input points are already x-sorted: skip the internal sort. This is
  /// the fast path the paper unlocks by maintaining x-sorted vertex arrays
  /// through every decomposition step.
  bool assume_sorted = false;
};

/// Result bundle of a triangulation run.
struct TriangulateResult {
  DelaunayMesh mesh;
  /// Mesh vertex index for each input point (duplicates merged).
  std::vector<VertIndex> vertex_ids;
  RefineStats refine_stats;
};

/// Triangulate a PSLG: Delaunay construction (+ constrained segments,
/// carving, Ruppert refinement per `opts`). This is the drop-in role that
/// Shewchuk's Triangle plays in the paper.
TriangulateResult triangulate(const Pslg& pslg, const TriangulateOptions& opts);

/// Convenience: plain Delaunay triangulation of a point set.
TriangulateResult triangulate_points(const std::vector<Vec2>& points,
                                     bool assume_sorted = false);

}  // namespace aero
