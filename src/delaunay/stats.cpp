#include "delaunay/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "geom/triangle_quality.hpp"

namespace aero {

MeshStats compute_stats(const DelaunayMesh& mesh) {
  MeshStats s;
  s.vertices = mesh.point_count();
  s.min_angle_deg = 180.0;
  s.min_area = std::numeric_limits<double>::infinity();

  mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = mesh.tri(t);
    if (!mt.inside) return;
    const Vec2 a = mesh.point(mt.v[0]);
    const Vec2 b = mesh.point(mt.v[1]);
    const Vec2 c = mesh.point(mt.v[2]);
    ++s.triangles;
    constexpr double kRad2Deg = 180.0 / 3.14159265358979323846;
    const double amin = min_angle(a, b, c) * kRad2Deg;
    const double amax = max_angle(a, b, c) * kRad2Deg;
    s.min_angle_deg = std::min(s.min_angle_deg, amin);
    s.max_angle_deg = std::max(s.max_angle_deg, amax);
    s.max_aspect_ratio = std::max(s.max_aspect_ratio, aspect_ratio(a, b, c));
    s.max_radius_edge = std::max(s.max_radius_edge, radius_edge_ratio(a, b, c));
    const double area = signed_area(a, b, c);
    s.total_area += area;
    s.min_area = std::min(s.min_area, area);
    s.max_area = std::max(s.max_area, area);
    const auto bin = static_cast<std::size_t>(
        std::min(5.0, std::floor(amin / 10.0)));
    ++s.min_angle_histogram[bin];
  });
  if (s.triangles == 0) s.min_area = 0.0;
  return s;
}

std::ostream& operator<<(std::ostream& os, const MeshStats& s) {
  os << "triangles=" << s.triangles << " vertices=" << s.vertices
     << " min_angle=" << s.min_angle_deg << " max_angle=" << s.max_angle_deg
     << " max_aspect=" << s.max_aspect_ratio
     << " max_radius_edge=" << s.max_radius_edge
     << " total_area=" << s.total_area;
  return os;
}

}  // namespace aero
