#pragma once

#include <cstddef>
#include <functional>
#include <limits>

#include "delaunay/mesh.hpp"

namespace aero {

/// Area sizing function: upper bound on triangle area at a location.
/// Infinity means unconstrained.
using AreaSizing = std::function<double(Vec2)>;

/// Options for Ruppert-style Delaunay refinement.
struct RefineOptions {
  /// Circumradius-to-shortest-edge bound B. Ruppert's algorithm terminates
  /// for B >= sqrt(2) (minimum angle arcsin(1/(2B)) ~ 20.7 degrees), which is
  /// the bound the paper's decoupling procedure is derived from.
  double radius_edge_bound = std::numeric_limits<double>::infinity();
  /// Uniform maximum triangle area (like Triangle's -a<value>).
  double max_area = std::numeric_limits<double>::infinity();
  /// Spatially varying maximum area, evaluated at the triangle centroid
  /// (the graded sizing function of the inviscid region). Null = unused.
  AreaSizing sizing;
  /// Safety valve on the number of Steiner points.
  std::size_t max_steiner = 50'000'000;
  /// Optional veto on splitting a constrained segment (by its endpoints).
  /// Used to protect decoupled shared borders: the grading rule guarantees
  /// they never *need* splitting, and splitting one would break conformity
  /// with the neighboring subdomain refined on another process.
  std::function<bool(Vec2, Vec2)> splittable;
  /// Threads for the initial bad-triangle/encroachment scan (1 =
  /// sequential). The scan partitions the triangle array into a fixed
  /// number of chunks scanned concurrently (quality tests and predicates
  /// are read-only) and concatenates the per-chunk queues in chunk order,
  /// so the work queues — and therefore the refined mesh — are identical
  /// at every thread count. The insertion loop itself stays sequential.
  /// `sizing` must be safe to call concurrently when threads > 1.
  int threads = 1;
};

/// Statistics returned by a refinement run.
struct RefineStats {
  std::size_t steiner_points = 0;
  std::size_t segment_splits = 0;
  std::size_t circumcenters = 0;
  std::size_t skipped_seditious = 0;
  bool hit_steiner_cap = false;
};

/// Ruppert Delaunay refinement over a carved constrained Delaunay mesh.
///
/// Splits encroached constrained subsegments (diametral-circle rule, with
/// concentric power-of-two shells off input vertices to survive the small
/// input angles of sharp trailing edges) and inserts circumcenters of
/// low-quality or oversized interior triangles, exactly as Triangle does for
/// the paper's inviscid subdomains.
class RuppertRefiner {
 public:
  RuppertRefiner(DelaunayMesh& mesh, RefineOptions options);

  /// Run to completion; returns statistics. The mesh must already be
  /// triangulated, constrained, and carved.
  RefineStats refine();

 private:
  bool triangle_is_bad(TriIndex t) const;
  bool edge_is_encroached(TriIndex t, int slot) const;
  /// Split constrained edge (u, w); returns the new vertex or kGhost if the
  /// edge no longer exists / is too short to split.
  VertIndex split_segment(VertIndex u, VertIndex w);
  /// Queue bad triangles and encroached segments in the star of v.
  void scan_star(VertIndex v);
  /// Straight walk from triangle `t` toward point c that refuses to cross
  /// constrained edges. Returns either the located triangle or the blocking
  /// constrained edge.
  struct Walk {
    bool blocked = false;
    bool on_vertex = false;
    TriIndex tri = kNoTri;
    int edge = -1;
  };
  Walk walk_to(Vec2 c, TriIndex t) const;

  DelaunayMesh& mesh_;
  RefineOptions opts_;
  RefineStats stats_;

  std::vector<std::pair<VertIndex, VertIndex>> seg_queue_;
  std::vector<TriIndex> tri_queue_;
  /// Scratch for the circumcenter encroachment pre-check (grow-only; cleared,
  /// not freed, between circumcenter attempts).
  std::vector<TriIndex> precheck_stack_;
  std::vector<TriIndex> precheck_visited_;
  std::vector<std::pair<VertIndex, VertIndex>> encroached_;
  /// For each vertex, the input vertex its concentric shell is centered on
  /// (kGhost when not a shell split point). Used to detect "seditious" short
  /// edges between shells of the same small-angle cluster.
  std::vector<VertIndex> shell_origin_;
};

}  // namespace aero
