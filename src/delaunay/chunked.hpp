#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace aero {

/// Grow-only chunked arena: the SoA storage primitive of the mesh core.
///
/// Elements live in fixed-size chunks (1 << kChunkPow each) that are never
/// moved or freed once allocated, which buys two things over std::vector:
///
///  * no reallocation doubling -- peak RSS tracks the element count instead
///    of spiking to old+new during a copy-grow (the dominant transient in
///    the pre-SoA mesh core), and unused capacity is bounded by one chunk;
///  * stable addresses -- a `T&` stays valid across push_back, so the
///    Bowyer-Watson inner loops can hold references while appending fresh
///    triangles.
///
/// The index arithmetic is two shifts and a load; the chunk-pointer table is
/// small enough to stay cached (one entry per 2^kChunkPow elements). This
/// extends the PR 5 cavity-arena discipline (grow, clear, never free) to the
/// mesh arrays themselves. Not thread-safe; the mesh's phase protocol
/// (parallel_insert.hpp) already guarantees writers are exclusive.
template <typename T, unsigned kChunkPow = 14>
class ChunkedArray {
 public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkPow;
  static constexpr std::size_t kIndexMask = kChunkSize - 1;

  ChunkedArray() = default;
  ChunkedArray(ChunkedArray&&) noexcept = default;
  ChunkedArray& operator=(ChunkedArray&&) noexcept = default;
  ChunkedArray(const ChunkedArray& other) { *this = other; }
  ChunkedArray& operator=(const ChunkedArray& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    return chunks_[i >> kChunkPow][i & kIndexMask];
  }
  const T& operator[](std::size_t i) const {
    return chunks_[i >> kChunkPow][i & kIndexMask];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back() = v; }

  T& emplace_back() {
    const std::size_t chunk = size_ >> kChunkPow;
    if (chunk == chunks_.size()) {
      chunks_.emplace_back(std::make_unique<T[]>(kChunkSize));
    }
    T& slot = chunks_[chunk][size_ & kIndexMask];
    ++size_;
    slot = T{};
    return slot;
  }

  /// Drop the elements but keep every chunk (arena reuse: the next fill of
  /// the same mesh touches the allocator only past the previous high-water
  /// mark).
  void clear() { size_ = 0; }

  void resize(std::size_t n, const T& fill = T{}) {
    while (size_ < n) emplace_back() = fill;
    size_ = n;
  }

  void assign(std::size_t n, const T& fill) {
    size_ = 0;
    resize(n, fill);
  }

  void reserve(std::size_t n) {
    const std::size_t want = (n + kChunkSize - 1) >> kChunkPow;
    while (chunks_.size() < want) {
      chunks_.emplace_back(std::make_unique<T[]>(kChunkSize));
    }
  }

  // -- Chunk-level access (serialization / MeshView backing) ---------------
  /// Number of chunks covering [0, size).
  std::size_t chunk_count() const {
    return (size_ + kChunkSize - 1) >> kChunkPow;
  }
  /// Contiguous storage of chunk `c`; the last chunk holds
  /// `size() - c * kChunkSize` live elements.
  const T* chunk_data(std::size_t c) const { return chunks_[c].get(); }
  /// Live element count of chunk `c`.
  std::size_t chunk_len(std::size_t c) const {
    const std::size_t lo = c << kChunkPow;
    const std::size_t n = size_ - lo;
    return n < kChunkSize ? n : kChunkSize;
  }
  /// Table of chunk base pointers (for zero-copy views over the arena).
  const std::unique_ptr<T[]>* chunk_table() const { return chunks_.data(); }

  friend bool operator==(const ChunkedArray& a, const ChunkedArray& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace aero
