// Guibas-Stolfi divide-and-conquer Delaunay triangulation.
//
//   L. Guibas and J. Stolfi, "Primitives for the Manipulation of General
//   Subdivisions and the Computation of Voronoi Diagrams," ACM TOG 4(2),
//   1985 -- including the classic merge-loop pseudocode reproduced (with
//   exact predicates) below.

#include "delaunay/quadedge.hpp"

#include <stdexcept>

#include "geom/predicates.hpp"

namespace aero {

QuadEdge::EdgeRef QuadEdge::make_edge(VertIndex o, VertIndex d) {
  EdgeRef base;
  if (!free_.empty()) {
    base = free_.back();
    free_.pop_back();
    dead_[base >> 2] = 0;
  } else {
    base = static_cast<EdgeRef>(next_.size());
    next_.resize(next_.size() + 4);
    data_.resize(data_.size() + 4, kGhost);
    dead_.push_back(0);
  }
  // e and Sym e are their own Onext rings; the dual quarters form a ring of
  // two (a single edge's left and right face are the same face).
  next_[base + 0] = base + 0;
  next_[base + 1] = base + 3;
  next_[base + 2] = base + 2;
  next_[base + 3] = base + 1;
  data_[base + 0] = o;
  data_[base + 2] = d;
  return base;
}

void QuadEdge::splice(EdgeRef a, EdgeRef b) {
  const EdgeRef alpha = rot(next_[a]);
  const EdgeRef beta = rot(next_[b]);
  const EdgeRef t1 = next_[b];
  const EdgeRef t2 = next_[a];
  const EdgeRef t3 = next_[beta];
  const EdgeRef t4 = next_[alpha];
  next_[a] = t1;
  next_[b] = t2;
  next_[alpha] = t3;
  next_[beta] = t4;
}

QuadEdge::EdgeRef QuadEdge::connect(EdgeRef a, EdgeRef b) {
  const EdgeRef e = make_edge(dest(a), org(b));
  splice(e, lnext(a));
  splice(sym(e), b);
  return e;
}

void QuadEdge::delete_edge(EdgeRef e) {
  splice(e, oprev(e));
  splice(sym(e), oprev(sym(e)));
  dead_[e >> 2] = 1;
  free_.push_back(e & ~3u);
}

namespace {

using EdgeRef = QuadEdge::EdgeRef;

struct DcContext {
  QuadEdge q;
  const std::vector<Vec2>& pts;

  bool ccw(VertIndex a, VertIndex b, VertIndex c) const {
    return orient2d(pts[static_cast<std::size_t>(a)],
                    pts[static_cast<std::size_t>(b)],
                    pts[static_cast<std::size_t>(c)]) > 0.0;
  }
  bool in_circle(VertIndex a, VertIndex b, VertIndex c, VertIndex d) const {
    return incircle(pts[static_cast<std::size_t>(a)],
                    pts[static_cast<std::size_t>(b)],
                    pts[static_cast<std::size_t>(c)],
                    pts[static_cast<std::size_t>(d)]) > 0.0;
  }
  bool right_of(VertIndex p, EdgeRef e) const {
    return ccw(p, q.dest(e), q.org(e));
  }
  bool left_of(VertIndex p, EdgeRef e) const {
    return ccw(p, q.org(e), q.dest(e));
  }
};

/// Recursive kernel over points [lo, hi) (x-sorted). Returns the
/// counter-clockwise convex hull edge out of the leftmost vertex (le) and
/// the clockwise hull edge out of the rightmost vertex (re).
std::pair<EdgeRef, EdgeRef> delaunay_rec(DcContext& ctx, VertIndex lo,
                                         VertIndex hi) {
  QuadEdge& q = ctx.q;
  const VertIndex n = hi - lo;
  if (n == 2) {
    const EdgeRef a = q.make_edge(lo, lo + 1);
    return {a, QuadEdge::sym(a)};
  }
  if (n == 3) {
    const VertIndex s1 = lo, s2 = lo + 1, s3 = lo + 2;
    const EdgeRef a = q.make_edge(s1, s2);
    const EdgeRef b = q.make_edge(s2, s3);
    q.splice(QuadEdge::sym(a), b);
    if (ctx.ccw(s1, s2, s3)) {
      q.connect(b, a);
      return {a, QuadEdge::sym(b)};
    }
    if (ctx.ccw(s1, s3, s2)) {
      const EdgeRef c = q.connect(b, a);
      return {QuadEdge::sym(c), c};
    }
    return {a, QuadEdge::sym(b)};  // collinear
  }

  // Divide at the midpoint of the x-sorted range: every cut is vertical.
  const VertIndex mid = lo + n / 2;
  auto [ldo, ldi] = delaunay_rec(ctx, lo, mid);
  auto [rdi, rdo] = delaunay_rec(ctx, mid, hi);

  // Lower common tangent of the two hulls.
  while (true) {
    if (ctx.left_of(q.org(rdi), ldi)) {
      ldi = q.lnext(ldi);
    } else if (ctx.right_of(q.org(ldi), rdi)) {
      rdi = q.rprev(rdi);
    } else {
      break;
    }
  }

  EdgeRef basel = q.connect(QuadEdge::sym(rdi), ldi);
  if (q.org(ldi) == q.org(ldo)) ldo = QuadEdge::sym(basel);
  if (q.org(rdi) == q.org(rdo)) rdo = basel;

  // Merge loop: rise the bubble.
  while (true) {
    const auto valid = [&](EdgeRef e) {
      return ctx.right_of(q.dest(e), basel);
    };
    EdgeRef lcand = q.onext(QuadEdge::sym(basel));
    if (valid(lcand)) {
      while (ctx.in_circle(q.dest(basel), q.org(basel), q.dest(lcand),
                           q.dest(q.onext(lcand)))) {
        const EdgeRef t = q.onext(lcand);
        q.delete_edge(lcand);
        lcand = t;
      }
    }
    EdgeRef rcand = q.oprev(basel);
    if (valid(rcand)) {
      while (ctx.in_circle(q.dest(basel), q.org(basel), q.dest(rcand),
                           q.dest(q.oprev(rcand)))) {
        const EdgeRef t = q.oprev(rcand);
        q.delete_edge(rcand);
        rcand = t;
      }
    }
    const bool lvalid = valid(lcand);
    const bool rvalid = valid(rcand);
    if (!lvalid && !rvalid) break;  // upper common tangent reached
    if (!lvalid ||
        (rvalid && ctx.in_circle(q.dest(lcand), q.org(lcand), q.org(rcand),
                                 q.dest(rcand)))) {
      basel = q.connect(rcand, QuadEdge::sym(basel));
    } else {
      basel = q.connect(QuadEdge::sym(basel), QuadEdge::sym(lcand));
    }
  }
  return {ldo, rdo};
}

}  // namespace

std::vector<std::array<VertIndex, 3>> dc_delaunay(
    const std::vector<Vec2>& points) {
  std::vector<std::array<VertIndex, 3>> out;
  if (points.size() < 3) return out;
  if (points.size() > static_cast<std::size_t>(1) << 31) {
    throw std::invalid_argument("dc_delaunay: too many points");
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (!LessXY{}(points[i - 1], points[i])) {
      throw std::invalid_argument(
          "dc_delaunay: input must be x-sorted and deduplicated");
    }
  }

  DcContext ctx{QuadEdge{}, points};
  delaunay_rec(ctx, 0, static_cast<VertIndex>(points.size()));

  // Extract CCW faces: visit each primal quarter-edge once; a triangle is
  // reported from its lexicographically smallest quarter to dedupe.
  const QuadEdge& q = ctx.q;
  std::vector<std::uint8_t> seen(q.capacity(), 0);
  for (EdgeRef e = 0; e < q.capacity(); e += 2) {
    // Primal quarters are e and e^2 within each group of 4: iterate 0 and 2.
    if ((e & 3u) != 0 && (e & 3u) != 2) continue;
    if (q.dead(e) || seen[e]) continue;
    const EdgeRef e1 = q.lnext(e);
    const EdgeRef e2 = q.lnext(e1);
    if (q.lnext(e2) != e) {
      seen[e] = 1;
      continue;  // outer face (hull walk longer than 3)
    }
    seen[e] = 1;
    seen[e1] = 1;
    seen[e2] = 1;
    const VertIndex a = q.org(e);
    const VertIndex b = q.org(e1);
    const VertIndex c = q.org(e2);
    if (ctx.ccw(a, b, c)) out.push_back({a, b, c});
  }
  return out;
}

}  // namespace aero
