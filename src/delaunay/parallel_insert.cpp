#include "delaunay/parallel_insert.hpp"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <thread>

#include "delaunay/brio.hpp"
#include "geom/predicates_fast.hpp"
#include "obs/trace.hpp"

namespace aero {

namespace {

/// Local xorshift32 step for the speculative walk. Same generator as
/// DelaunayMesh::next_rand, but the state lives on the speculating thread
/// and is seeded per point, so a speculation's walk path -- and through it
/// the recorded cavity order -- is a pure function of the point's sequence
/// index, never of which thread ran it or what ran before.
inline std::uint32_t spec_rand(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

inline std::uint32_t walk_seed(std::uint32_t seq_index) {
  const auto h = static_cast<std::uint32_t>(
      splitmix64(0xa5a5u ^ static_cast<std::uint64_t>(seq_index)));
  return h != 0 ? h : 0x9d2c5680u;  // xorshift state must be nonzero
}

/// Window schedule: sized from committed progress only (never the thread
/// count), so every thread count executes the identical speculate/commit
/// sequence. The divisor keeps the expected conflict fraction low: a commit
/// perturbs O(1) triangles out of ~2x the committed count, so a window of
/// committed/384 keeps same-window overlaps at a few percent under the
/// scatter order while still amortizing the phase barrier.
constexpr std::size_t kWindowDivisor = 384;
constexpr std::size_t kMinWindow = 64;
constexpr std::size_t kMaxWindow = 8192;

inline std::size_t window_size(std::size_t committed, std::size_t remaining) {
  const std::size_t w =
      std::clamp(committed / kWindowDivisor, kMinWindow, kMaxWindow);
  return std::min(w, remaining);
}

}  // namespace

ParallelInserter::ParallelInserter(DelaunayMesh& mesh, int threads)
    : mesh_(mesh), threads_(std::max(1, threads)) {
  scratch_.resize(static_cast<std::size_t>(threads_));
}

// ---------------------------------------------------------------------------
// Committed-vertex hint grid.

void ParallelInserter::build_grid(const std::vector<Vec2>& ordered) {
  grid_box_ = BBox2{ordered[0], ordered[0]};
  for (const Vec2 p : ordered) grid_box_.expand(p);
  // ~2 points per cell at full occupancy: fine enough that the hint vertex
  // is a handful of triangles from the query, coarse enough that the spiral
  // search after the sparse bootstrap stays short.
  const auto dim = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(ordered.size()) / 2.0));
  grid_dim_ = std::clamp<std::size_t>(dim, 8, 2048);
  const double w = grid_box_.hi.x - grid_box_.lo.x;
  const double h = grid_box_.hi.y - grid_box_.lo.y;
  grid_sx_ = w > 0.0 ? static_cast<double>(grid_dim_ - 1) / w : 0.0;
  grid_sy_ = h > 0.0 ? static_cast<double>(grid_dim_ - 1) / h : 0.0;
  grid_.assign(grid_dim_ * grid_dim_, kGhost);
}

std::size_t ParallelInserter::grid_cell(Vec2 p) const {
  const double fx = std::max(0.0, (p.x - grid_box_.lo.x) * grid_sx_);
  const double fy = std::max(0.0, (p.y - grid_box_.lo.y) * grid_sy_);
  const std::size_t gx =
      std::min(static_cast<std::size_t>(fx), grid_dim_ - 1);
  const std::size_t gy =
      std::min(static_cast<std::size_t>(fy), grid_dim_ - 1);
  return gy * grid_dim_ + gx;
}

void ParallelInserter::grid_note(Vec2 p, VertIndex v) {
  grid_[grid_cell(p)] = v;
}

VertIndex ParallelInserter::grid_lookup(Vec2 p) const {
  const std::size_t cell = grid_cell(p);
  const VertIndex direct = grid_[cell];
  if (direct != kGhost) return direct;
  const auto cx = static_cast<std::ptrdiff_t>(cell % grid_dim_);
  const auto cy = static_cast<std::ptrdiff_t>(cell / grid_dim_);
  const auto dim = static_cast<std::ptrdiff_t>(grid_dim_);
  // Deterministic ring search outward from the empty home cell. The grid is
  // never fully empty once the bootstrap prefix is in, so this terminates.
  for (std::ptrdiff_t r = 1; r < dim; ++r) {
    const std::ptrdiff_t x0 = std::max<std::ptrdiff_t>(0, cx - r);
    const std::ptrdiff_t x1 = std::min(dim - 1, cx + r);
    const std::ptrdiff_t y0 = std::max<std::ptrdiff_t>(0, cy - r);
    const std::ptrdiff_t y1 = std::min(dim - 1, cy + r);
    for (std::ptrdiff_t y = y0; y <= y1; ++y) {
      const bool edge_row = (y == cy - r || y == cy + r);
      const std::ptrdiff_t step = edge_row ? 1 : std::max<std::ptrdiff_t>(
                                                     1, (x1 - x0));
      for (std::ptrdiff_t x = x0; x <= x1; x += step) {
        const VertIndex v = grid_[static_cast<std::size_t>(y * dim + x)];
        if (v != kGhost) return v;
      }
    }
  }
  return kGhost;
}

// ---------------------------------------------------------------------------
// Phase A: read-only speculation.

bool ParallelInserter::spec_locate(Vec2 p, TriIndex start, std::uint32_t& rng,
                                   LocateResult& res) const {
  const DelaunayMesh& m = mesh_;
  TriIndex t = start;
  if (t == kNoTri || m.tri_dead(t)) return false;
  if (m.tri_ghost(t)) {
    t = m.tn(t)[2];  // its finite partner
  }
  // Mirror of DelaunayMesh::locate (same classification, same stochastic
  // crossing rule) minus every mesh write: last_tri_ and rand_state_ belong
  // to the commit phase.
  int came_from = -1;
  for (std::size_t guard = 0; guard <= 4 * m.triangle_slots() + 16; ++guard) {
    const auto& v = m.tv(t);
    double o[3];
    int neg[3];
    int nneg = 0;
    int zero_mask = 0;
    for (int i = 0; i < 3; ++i) {
      if (i == came_from) {
        o[i] = 1.0;
        continue;
      }
      o[i] = orient2d_fast(m.point(v[(i + 1) % 3]),
                           m.point(v[(i + 2) % 3]), p);
      if (o[i] < 0.0) neg[nneg++] = i;
      if (o[i] == 0.0) zero_mask |= 1 << i;
    }
    if (nneg == 0) {
      const int nzero = (zero_mask & 1) + ((zero_mask >> 1) & 1) +
                        ((zero_mask >> 2) & 1);
      res.tri = t;
      if (nzero == 0) {
        res.kind = LocateResult::Kind::kInside;
      } else if (nzero == 1) {
        res.kind = LocateResult::Kind::kOnEdge;
        res.edge = zero_mask == 1 ? 0 : (zero_mask == 2 ? 1 : 2);
      } else {
        int e0 = -1, e1 = -1;
        for (int i = 0; i < 3; ++i) {
          if (zero_mask & (1 << i)) (e0 < 0 ? e0 : e1) = i;
        }
        res.kind = LocateResult::Kind::kOnVertex;
        res.edge = 3 - e0 - e1;
      }
      return true;
    }
    const int cross =
        neg[nneg == 1 ? 0
                      : static_cast<int>(spec_rand(rng) %
                                         static_cast<unsigned>(nneg))];
    const TriIndex nb = m.tn(t)[cross];
    if (m.tri_ghost(nb)) {
      res.kind = LocateResult::Kind::kOutside;
      res.tri = nb;
      return true;
    }
    came_from = -1;
    const auto& nbn = m.tn(nb);
    for (int i = 0; i < 3; ++i) {
      if (nbn[i] == t) {
        came_from = i;
        break;
      }
    }
    t = nb;
  }
  return false;  // guard tripped; commit re-inserts sequentially
}

void ParallelInserter::speculate(Vec2 p, std::uint32_t seq_index,
                                 WorkerScratch& ws, Spec& spec) const {
  spec.kind = Spec::Kind::kFailed;
  const VertIndex hv = grid_lookup(p);
  if (hv == kGhost) return;
  std::uint32_t rng = walk_seed(seq_index);
  LocateResult loc;
  if (!spec_locate(p, mesh_.vert_tri_[static_cast<std::size_t>(hv)], rng,
                   loc)) {
    return;
  }
  if (loc.kind == LocateResult::Kind::kOnVertex) {
    spec.kind = Spec::Kind::kDuplicate;
    spec.dup = mesh_.tv(loc.tri)[loc.edge];
    return;
  }

  const DelaunayMesh& m = mesh_;
  const std::size_t slots = m.triangle_slots();
  if (ws.mark.size() < slots) {
    ws.mark.resize(slots + slots / 2 + 8, 0);
  }
  if (++ws.epoch == 0) {  // stamp wrap: reset marks once per 2^32 points
    std::fill(ws.mark.begin(), ws.mark.end(), 0u);
    ws.epoch = 1;
  }
  const std::uint32_t epoch = ws.epoch;

  // Same DFS discipline as insert_into_cavity, against the frozen mesh.
  spec.cavity.clear();
  spec.boundary.clear();
  ws.stack.clear();
  TriIndex seeds[2];
  std::size_t nseeds = 1;
  seeds[0] = loc.tri;
  if (loc.kind == LocateResult::Kind::kOnEdge) {
    seeds[1] = m.tn(loc.tri)[loc.edge];
    nseeds = 2;
  }
  for (std::size_t s = 0; s < nseeds; ++s) {
    ws.stack.push_back(seeds[s]);
    ws.mark[static_cast<std::size_t>(seeds[s])] = epoch;
  }
  while (!ws.stack.empty()) {
    const TriIndex t = ws.stack.back();
    ws.stack.pop_back();
    spec.cavity.push_back(t);
    const auto& tn = m.tn(t);
    for (int i = 0; i < 3; ++i) {
      const TriIndex nb = tn[i];
      if (nb == kNoTri || ws.mark[static_cast<std::size_t>(nb)] == epoch) {
        continue;
      }
      if (m.in_cavity(nb, p)) {
        ws.mark[static_cast<std::size_t>(nb)] = epoch;
        ws.stack.push_back(nb);
      }
    }
  }
  for (const TriIndex t : spec.cavity) {
    const auto& tvv = m.tv(t);
    const auto& tnn = m.tn(t);
    for (int i = 0; i < 3; ++i) {
      const TriIndex nb = tnn[i];
      if (nb != kNoTri && ws.mark[static_cast<std::size_t>(nb)] == epoch) {
        continue;
      }
      int nb_edge = -1;
      const auto& nbn = m.tn(nb);
      for (int j = 0; j < 3; ++j) {
        if (nbn[j] == t) {
          nb_edge = j;
          break;
        }
      }
      spec.boundary.push_back({tvv[(i + 1) % 3], tvv[(i + 2) % 3], nb,
                               nb_edge,
                               m.tri_ghost(t) ? true : m.tri_inside(t)});
    }
  }
  spec.kind = Spec::Kind::kCavity;
}

void ParallelInserter::speculate_stride(int worker) {
  WorkerScratch& ws = scratch_[static_cast<std::size_t>(worker)];
  const std::vector<Vec2>& ordered = *ordered_;
  for (std::size_t j = static_cast<std::size_t>(worker);
       j < window_end_ - window_begin_;
       j += static_cast<std::size_t>(threads_)) {
    const std::size_t seq = window_begin_ + j;
    speculate(ordered[seq], static_cast<std::uint32_t>(seq), ws, specs_[j]);
  }
}

// ---------------------------------------------------------------------------
// Phase B: serial commit.

bool ParallelInserter::spec_valid(const Spec& spec) const {
  const DelaunayMesh& m = mesh_;
  const auto untouched = [&](TriIndex t) {
    if (m.tri_dead(t)) return false;
    const auto i = static_cast<std::size_t>(t);
    return i >= touched_.size() || touched_[i] != window_id_;
  };
  // A speculation stays exact iff nothing it read moved: every cavity
  // member and every boundary-outside neighbor must be alive and unlinked
  // since the window froze. (An alive, untouched triangle still has the
  // vertices and adjacency the speculation saw -- commits only relink the
  // neighbors of the fresh star, and those are all stamped.)
  for (const TriIndex t : spec.cavity) {
    if (!untouched(t)) return false;
  }
  for (const SpecEdge& be : spec.boundary) {
    if (!untouched(be.outside)) return false;
  }
  return true;
}

void ParallelInserter::stamp_neighbors_of_fresh(std::size_t tris_before) {
  const std::size_t slots = mesh_.triangle_slots();
  if (touched_.size() < slots) {
    touched_.resize(slots + slots / 2 + 8, 0);
  }
  for (std::size_t f = tris_before; f < slots; ++f) {
    for (const TriIndex nb : mesh_.tri_n_[f]) {
      if (nb != kNoTri && static_cast<std::size_t>(nb) < tris_before) {
        touched_[static_cast<std::size_t>(nb)] = window_id_;
      }
    }
  }
}

VertIndex ParallelInserter::commit_replay(Vec2 p, const Spec& spec) {
  DelaunayMesh& m = mesh_;
  const std::size_t tris_before = m.triangle_slots();
  const auto vi = static_cast<VertIndex>(m.points_.size());
  m.points_.push_back(p);
  m.vert_tri_.push_back(kNoTri);

  // The star-retriangulation half of insert_into_cavity, fed from the
  // recorded boundary instead of a fresh DFS: all predicate work already
  // happened in phase A. Plain construction has no constrained edges, so
  // the constraint wiring of the sequential path is omitted (it would only
  // re-store `false`).
  if (m.fan_start_.size() < m.points_.size() + 1) {
    m.fan_start_.resize(m.points_.size() + m.points_.size() / 2 + 2, kNoTri);
  }
  m.fresh_.clear();
  for (const SpecEdge& be : spec.boundary) {
    const TriIndex nt = m.new_tri();
    if (be.a == kGhost) {
      m.tv(nt) = {be.b, vi, kGhost};
      m.set_flag(nt, DelaunayMesh::kInside, false);
    } else if (be.b == kGhost) {
      m.tv(nt) = {vi, be.a, kGhost};
      m.set_flag(nt, DelaunayMesh::kInside, false);
    } else {
      m.tv(nt) = {vi, be.a, be.b};
      m.set_flag(nt, DelaunayMesh::kInside, be.inside_region);
      ++m.live_finite_;
    }
    const int s_ab = m.index_of(nt, vi);
    m.link(nt, s_ab, be.outside, be.outside_edge);
    TriIndex& start = m.fan_start_[static_cast<std::size_t>(be.a + 1)];
    if (start == kNoTri) start = nt;
    m.fresh_.push_back(nt);
  }
  for (std::size_t idx = 0; idx < spec.boundary.size(); ++idx) {
    const SpecEdge& be = spec.boundary[idx];
    const TriIndex nt = m.fresh_[idx];
    const TriIndex mt2 = m.fan_start_[static_cast<std::size_t>(be.b + 1)];
    const int slot_nt = m.index_of(nt, be.a);
    const auto& v2 = m.tv(mt2);
    int slot_m2 = -1;
    for (int i = 0; i < 3; ++i) {
      if (v2[i] != vi && v2[i] != be.b) {
        slot_m2 = i;
        break;
      }
    }
    m.link(nt, slot_nt, mt2, slot_m2);
  }
  for (const SpecEdge& be : spec.boundary) {
    m.fan_start_[static_cast<std::size_t>(be.a + 1)] = kNoTri;
  }
  for (const TriIndex t : spec.cavity) m.kill_tri(t);
  for (const TriIndex t : m.fresh_) m.set_vert_tri(t);
  m.last_tri_ = m.fresh_[0];
  for (const TriIndex t : m.fresh_) {
    if (!m.tri_ghost(t)) {
      m.last_tri_ = t;
      break;
    }
  }
  stamp_neighbors_of_fresh(tris_before);
  return vi;
}

VertIndex ParallelInserter::commit_fallback(Vec2 p) {
  const std::size_t tris_before = mesh_.triangle_slots();
  const VertIndex hv = grid_lookup(p);
  const TriIndex hint =
      hv == kGhost ? kNoTri : mesh_.vert_tri_[static_cast<std::size_t>(hv)];
  const VertIndex vi =
      mesh_.insert_point(p, /*respect_constraints=*/false, hint);
  stamp_neighbors_of_fresh(tris_before);
  return vi;
}

// ---------------------------------------------------------------------------
// Driver.

bool ParallelInserter::run(const std::vector<Vec2>& ordered,
                           std::vector<VertIndex>* ids) {
  AERO_TRACE_SPAN("delaunay", "parallel_insert");
  const std::size_t n = ordered.size();
  if (n < 3) return false;

  // Bootstrap a sequential prefix so the frozen mesh the first window
  // speculates against is dense enough for short walks. A fully collinear
  // prefix grows until a non-collinear triple appears.
  std::size_t prefix = std::min(kBootstrapPoints, n);
  std::vector<VertIndex> boot_ids;
  for (;;) {
    const std::vector<Vec2> pre(ordered.begin(),
                                ordered.begin() +
                                    static_cast<std::ptrdiff_t>(prefix));
    if (mesh_.triangulate(pre, &boot_ids)) break;
    if (prefix == n) return false;  // every input point collinear
    prefix = std::min(n, prefix * 2);
  }
  if (ids) {
    ids->assign(n, kGhost);
    std::copy(boot_ids.begin(), boot_ids.end(), ids->begin());
  }

  build_grid(ordered);
  for (std::size_t i = 0; i < prefix; ++i) {
    grid_note(ordered[i], boot_ids[i]);
  }
  const std::size_t slots = mesh_.triangle_slots();
  touched_.assign(slots + slots / 2 + 8, 0);
  window_id_ = 0;
  ordered_ = &ordered;
  stats_ = Stats{};

  const auto commit_window = [&] {
    const std::size_t count = window_end_ - window_begin_;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t seq = window_begin_ + j;
      const Vec2 p = ordered[seq];
      Spec& spec = specs_[j];
      VertIndex vi;
      switch (spec.kind) {
        case Spec::Kind::kDuplicate:
          vi = spec.dup;
          ++stats_.duplicates;
          break;
        case Spec::Kind::kCavity:
          if (spec_valid(spec)) {
            vi = commit_replay(p, spec);
            ++stats_.replayed;
          } else {
            ++stats_.conflicts;
            ++stats_.fallbacks;
            vi = commit_fallback(p);
          }
          break;
        case Spec::Kind::kFailed:
        default:
          ++stats_.fallbacks;
          vi = commit_fallback(p);
          break;
      }
      if (ids) (*ids)[seq] = vi;
      grid_note(p, vi);
    }
    stats_.speculated += count;
    ++stats_.windows;
  };

  const auto prepare_window = [&](std::size_t next) {
    window_begin_ = next;
    window_end_ = next + window_size(next, n - next);
    ++window_id_;
    const std::size_t count = window_end_ - window_begin_;
    if (specs_.size() < count) specs_.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      specs_[j].kind = Spec::Kind::kFailed;
    }
  };

  if (threads_ <= 1 || n - prefix < kMinWindow) {
    for (std::size_t next = prefix; next < n; next = window_end_) {
      prepare_window(next);
      speculate_stride(0);
      commit_window();
    }
  } else {
    // Persistent worker team; the two barriers alternate speculate (all
    // threads, mesh frozen) and commit (main thread only, workers parked at
    // the start barrier). Each arrive_and_wait is a full synchronization
    // point, so phase-A reads and phase-B writes never overlap.
    std::barrier start_phase(threads_);
    std::barrier end_phase(threads_);
    stop_workers_ = false;
    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w) {
      team.emplace_back([this, w, &start_phase, &end_phase] {
        for (;;) {
          start_phase.arrive_and_wait();
          if (stop_workers_) break;
          try {
            speculate_stride(w);
          } catch (...) {
            // Slots this worker did not finish stay kFailed; the commit
            // phase re-inserts them sequentially (and re-raises any real
            // resource failure on the main thread).
          }
          end_phase.arrive_and_wait();
        }
      });
    }
    try {
      for (std::size_t next = prefix; next < n; next = window_end_) {
        prepare_window(next);
        start_phase.arrive_and_wait();
        try {
          speculate_stride(0);
        } catch (...) {
        }
        end_phase.arrive_and_wait();
        commit_window();
      }
      stop_workers_ = true;
      start_phase.arrive_and_wait();
    } catch (...) {
      stop_workers_ = true;
      start_phase.arrive_and_wait();
      for (std::thread& t : team) t.join();
      throw;
    }
    for (std::thread& t : team) t.join();
  }

  ordered_ = nullptr;
  mesh_.input_point_count_ = mesh_.points_.size();
  return true;
}

}  // namespace aero
