#include "delaunay/mesh.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstdio>
#include <deque>
#include <stdexcept>

#include "geom/predicates.hpp"
#include "geom/predicates_fast.hpp"
#include "obs/trace.hpp"

namespace aero {

// Small deterministic PRNG for the stochastic walk (avoids pathological
// cycles in point location without the cost of <random>). The state is
// per-mesh, not thread_local: a process-wide state would make the walk path
// -- and through cavity seeding the triangle creation order -- depend on how
// many walks earlier triangulations performed, breaking the guarantee that
// the same input always yields a bit-identical mesh.
std::uint32_t DelaunayMesh::next_rand() const {
  std::uint32_t s = rand_state_;
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  rand_state_ = s;
  return s;
}

std::size_t DelaunayMesh::inside_triangle_count() const {
  std::size_t n = 0;
  for (TriIndex t = 0; t < static_cast<TriIndex>(tri_v_.size()); ++t) {
    if (is_live_finite(t) && tri_inside(t)) ++n;
  }
  return n;
}

TriIndex DelaunayMesh::new_tri() {
  tri_v_.emplace_back() = {kGhost, kGhost, kGhost};
  tri_n_.emplace_back() = {kNoTri, kNoTri, kNoTri};
  tri_flags_.emplace_back() = kInside;
  return static_cast<TriIndex>(tri_v_.size() - 1);
}

void DelaunayMesh::kill_tri(TriIndex t) {
  assert(!tri_dead(t));
  if (!tri_ghost(t)) --live_finite_;
  set_flag(t, kDead, true);
}

void DelaunayMesh::link(TriIndex t, int edge, TriIndex u, int uedge) {
  tn(t)[edge] = u;
  tn(u)[uedge] = t;
}

void DelaunayMesh::set_vert_tri(TriIndex t) {
  for (const VertIndex v : tv(t)) {
    if (v != kGhost) vert_tri_[static_cast<size_t>(v)] = t;
  }
}

bool DelaunayMesh::in_cavity(TriIndex t, Vec2 p) const {
  const auto& v = tv(t);
  if (v[2] != kGhost) {
    return incircle_fast(point(v[0]), point(v[1]), point(v[2]), p) > 0.0;
  }
  // Ghost (w, u, kGhost) for finite hull edge (u, w): its "circumdisk" is
  // the open half-plane strictly beyond the hull edge, plus the open edge
  // itself (a point landing exactly on the hull edge splits it, so the ghost
  // must dissolve). A point collinear with the edge but beyond its endpoints
  // leaves this hull edge intact and must NOT claim the ghost, or the star
  // retriangulation would emit a degenerate collinear triangle.
  const Vec2 w = point(v[0]);
  const Vec2 u = point(v[1]);
  const double o = orient2d_fast(w, u, p);
  if (o > 0.0) return true;
  if (o < 0.0) return false;
  return (p - u).dot(w - u) > 0.0 && (p - w).dot(u - w) > 0.0;
}

bool DelaunayMesh::triangulate(const std::vector<Vec2>& pts,
                               std::vector<VertIndex>* ids) {
  points_.clear();
  tri_v_.clear();
  tri_n_.clear();
  tri_flags_.clear();
  vert_tri_.clear();
  live_finite_ = 0;
  last_tri_ = kNoTri;
  rand_state_ = 0x9d2c5680u;

  if (pts.size() < 3) return false;

  // Find an initial non-collinear triple (i, j, k) with i=0, j = first point
  // distinct from p0, and k the first point not collinear with them.
  const Vec2 p0 = pts[0];
  std::size_t j = 1;
  while (j < pts.size() && pts[j] == p0) ++j;
  if (j == pts.size()) return false;
  const Vec2 p1 = pts[j];
  std::size_t k = j + 1;
  double orient = 0.0;
  while (k < pts.size()) {
    orient = orient2d(p0, p1, pts[k]);
    if (orient != 0.0) break;
    ++k;
  }
  if (k == pts.size()) return false;  // all collinear

  // Seed triangle (CCW) plus three ghosts closing the sphere.
  points_.push_back(p0);
  points_.push_back(p1);
  points_.push_back(pts[k]);
  if (orient < 0.0) std::swap(points_[1], points_[2]);
  vert_tri_.assign(3, kNoTri);

  const TriIndex f = new_tri();
  tv(f) = {0, 1, 2};
  live_finite_ = 1;
  // Ghost for hull edge (a, b) is stored (b, a, kGhost); finite edge slots:
  // edge 0 = (1,2), edge 1 = (2,0), edge 2 = (0,1).
  const TriIndex g01 = new_tri();
  const TriIndex g12 = new_tri();
  const TriIndex g20 = new_tri();
  tv(g01) = {1, 0, kGhost};
  tv(g12) = {2, 1, kGhost};
  tv(g20) = {0, 2, kGhost};
  set_flag(g01, kInside, false);
  set_flag(g12, kInside, false);
  set_flag(g20, kInside, false);
  link(f, 2, g01, 2);  // finite edge (0,1) <-> ghost edge (1,0)
  link(f, 0, g12, 2);
  link(f, 1, g20, 2);
  // Ghost ring: ghost (b, a, G) has edge 0 = (a, G) and edge 1 = (G, b).
  // g01 = (1,0,G): edge0=(0,G), edge1=(G,1); g20 = (0,2,G): edge1=(G,0).
  link(g01, 0, g20, 1);  // shared vertex 0
  link(g12, 0, g01, 1);  // shared vertex 1
  link(g20, 0, g12, 1);  // shared vertex 2
  set_vert_tri(f);
  last_tri_ = f;

  if (ids) {
    ids->assign(pts.size(), kGhost);
    (*ids)[0] = 0;
    (*ids)[j] = orient < 0.0 ? 2 : 1;
    (*ids)[k] = orient < 0.0 ? 1 : 2;
  }

  // Insert the remaining points in input order (duplicates merge).
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (i == j || i == k) continue;
    const VertIndex vi = insert_point(pts[i], /*respect_constraints=*/false);
    if (ids) (*ids)[i] = vi;
  }
  if (ids) {
    // Duplicates of the seed points that preceded them positionally.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if ((*ids)[i] == kGhost) {
        // pts[i] equals one of the seed coordinates.
        for (VertIndex s = 0; s < 3; ++s) {
          if (points_[static_cast<size_t>(s)] == pts[i]) (*ids)[i] = s;
        }
      }
    }
  }
  input_point_count_ = points_.size();
  return true;
}

LocateResult DelaunayMesh::locate(Vec2 p, TriIndex hint) const {
  LocateResult res;
  TriIndex t = hint != kNoTri ? hint : last_tri_;
  if (t == kNoTri || tri_dead(t)) {
    // Fallback: any live finite triangle.
    t = kNoTri;
    for (TriIndex i = 0; i < static_cast<TriIndex>(tri_v_.size()); ++i) {
      if (is_live_finite(i)) {
        t = i;
        break;
      }
    }
    if (t == kNoTri) throw std::logic_error("locate on empty triangulation");
  }
  if (tri_ghost(t)) {
    t = tn(t)[2];  // its finite partner
  }

  int came_from = -1;  // edge slot we entered through, in current triangle
  for (std::size_t guard = 0; guard <= 4 * tri_v_.size() + 16; ++guard) {
    const auto& v = tv(t);
    double o[3];
    int neg[3];
    int nneg = 0;
    int zero_mask = 0;
    for (int i = 0; i < 3; ++i) {
      if (i == came_from) {
        o[i] = 1.0;  // we came from there; p is on this side by construction
        continue;
      }
      o[i] = orient2d_fast(point(v[(i + 1) % 3]), point(v[(i + 2) % 3]), p);
      if (o[i] < 0.0) neg[nneg++] = i;
      if (o[i] == 0.0) zero_mask |= 1 << i;
    }
    if (nneg == 0) {
      // Inside or on boundary of this triangle.
      const int nzero = (zero_mask & 1) + ((zero_mask >> 1) & 1) +
                        ((zero_mask >> 2) & 1);
      last_tri_ = t;
      res.tri = t;
      if (nzero == 0) {
        res.kind = LocateResult::Kind::kInside;
      } else if (nzero == 1) {
        res.kind = LocateResult::Kind::kOnEdge;
        res.edge = zero_mask == 1 ? 0 : (zero_mask == 2 ? 1 : 2);
      } else {
        // On the vertex shared by the two zero edges.
        int e0 = -1, e1 = -1;
        for (int i = 0; i < 3; ++i) {
          if (zero_mask & (1 << i)) (e0 < 0 ? e0 : e1) = i;
        }
        res.kind = LocateResult::Kind::kOnVertex;
        res.edge = 3 - e0 - e1;
      }
      return res;
    }
    // Cross a random violated edge (stochastic walk: terminates with exact
    // predicates).
    const int cross = neg[nneg == 1 ? 0 : static_cast<int>(next_rand() % static_cast<unsigned>(nneg))];
    const TriIndex nb = tn(t)[cross];
    if (tri_ghost(nb)) {
      last_tri_ = t;
      res.kind = LocateResult::Kind::kOutside;
      res.tri = nb;
      return res;
    }
    // Entering nb across the shared edge; find its slot in nb.
    came_from = -1;
    const auto& nbn = tn(nb);
    for (int i = 0; i < 3; ++i) {
      if (nbn[i] == t) {
        came_from = i;
        break;
      }
    }
    t = nb;
  }
  throw std::logic_error("locate: walk failed to terminate");
}

VertIndex DelaunayMesh::insert_into_cavity(Vec2 p, const TriIndex* seeds,
                                           std::size_t nseeds,
                                           bool respect_constraints) {
  const auto vi = static_cast<VertIndex>(points_.size());
  points_.push_back(p);
  vert_tri_.push_back(kNoTri);

  if (in_cavity_mark_.size() < tri_v_.size()) {
    in_cavity_mark_.resize(tri_v_.size() + tri_v_.size() / 2 + 8, 0);
  }
  cavity_.clear();
  cavity_stack_.clear();
  for (std::size_t s = 0; s < nseeds; ++s) {
    cavity_stack_.push_back(seeds[s]);
    in_cavity_mark_[static_cast<size_t>(seeds[s])] = 1;
  }

  while (!cavity_stack_.empty()) {
    const TriIndex t = cavity_stack_.back();
    cavity_stack_.pop_back();
    cavity_.push_back(t);
    const auto& n = tn(t);
    for (int i = 0; i < 3; ++i) {
      const TriIndex nb = n[i];
      if (nb == kNoTri || in_cavity_mark_[static_cast<size_t>(nb)]) continue;
      if (respect_constraints && tri_constrained(t, i)) continue;
      if (in_cavity(nb, p)) {
        in_cavity_mark_[static_cast<size_t>(nb)] = 1;
        cavity_stack_.push_back(nb);
      }
    }
  }

  // Collect the directed boundary cycle of the cavity. Edge i of cavity
  // triangle t runs (v[i+1], v[i+2]) with the cavity on its left.
  boundary_.clear();
  for (const TriIndex t : cavity_) {
    const auto& v = tv(t);
    const auto& n = tn(t);
    for (int i = 0; i < 3; ++i) {
      const TriIndex nb = n[i];
      if (nb != kNoTri && in_cavity_mark_[static_cast<size_t>(nb)]) continue;
      int nb_edge = -1;
      const auto& nbn = tn(nb);
      for (int j = 0; j < 3; ++j) {
        if (nbn[j] == t) {
          nb_edge = j;
          break;
        }
      }
      // Region inheritance: a new triangle occupies the region of the
      // cavity triangle that owned its boundary edge. Ghost owners mean the
      // hull is being extended, which only happens during construction
      // (pre-carve), where everything is inside.
      boundary_.push_back({v[(i + 1) % 3], v[(i + 2) % 3], nb, nb_edge,
                           tri_constrained(t, i),
                           v[2] == kGhost ? true : tri_inside(t)});
    }
  }

  // Star retriangulation: one new triangle (vi, a, b) per boundary edge.
  // Rotate storage so a ghost vertex always lands in slot 2. `fan_start_`
  // maps a boundary edge's start vertex (slot a+1; kGhost lands at 0) to
  // its fresh triangle; first write wins, matching the map semantics the
  // pinched-cavity constrained case relies on.
  if (fan_start_.size() < points_.size() + 1) {
    fan_start_.resize(points_.size() + points_.size() / 2 + 2, kNoTri);
  }
  fresh_.clear();
  for (const CavityEdge& be : boundary_) {
    const TriIndex nt = new_tri();
    if (be.a == kGhost) {
      tv(nt) = {be.b, vi, kGhost};
      set_flag(nt, kInside, false);
    } else if (be.b == kGhost) {
      tv(nt) = {vi, be.a, kGhost};
      set_flag(nt, kInside, false);
    } else {
      tv(nt) = {vi, be.a, be.b};
      set_flag(nt, kInside, be.inside_region);
      ++live_finite_;
    }
    // Wire across the boundary edge (the slot opposite vi).
    const int s_ab = index_of(nt, vi);
    link(nt, s_ab, be.outside, be.outside_edge);
    set_constrained(nt, s_ab, be.constrained);
    set_constrained(be.outside, be.outside_edge, be.constrained);
    TriIndex& start = fan_start_[static_cast<size_t>(be.a + 1)];
    if (start == kNoTri) start = nt;
    fresh_.push_back(nt);
  }

  // Wire the fan: triangle for boundary edge (a, b) shares edge {vi, b} with
  // the triangle for the boundary edge starting at b.
  for (std::size_t idx = 0; idx < boundary_.size(); ++idx) {
    const CavityEdge& be = boundary_[idx];
    const TriIndex nt = fresh_[idx];
    const TriIndex mt2 = fan_start_[static_cast<size_t>(be.b + 1)];
    assert(mt2 != kNoTri);
    // In nt, the edge {vi, b} is the one excluding a.
    const int slot_nt = index_of(nt, be.a);
    // In mt2 (edge (b, c)), the edge {vi, b} is the one excluding c, i.e.
    // excluding the vertex that is neither vi nor b.
    const auto& v2 = tv(mt2);
    int slot_m2 = -1;
    for (int i = 0; i < 3; ++i) {
      if (v2[i] != vi && v2[i] != be.b) {
        slot_m2 = i;
        break;
      }
    }
    link(nt, slot_nt, mt2, slot_m2);
  }

  // Reset the touched arena entries (O(cavity), not O(mesh)).
  for (const CavityEdge& be : boundary_) {
    fan_start_[static_cast<size_t>(be.a + 1)] = kNoTri;
  }
  for (const TriIndex t : cavity_) {
    in_cavity_mark_[static_cast<size_t>(t)] = 0;
    kill_tri(t);
  }
  for (const TriIndex t : fresh_) set_vert_tri(t);
  if (!fresh_.empty()) {
    // Prefer a finite triangle as the next walk hint.
    last_tri_ = fresh_[0];
    for (const TriIndex t : fresh_) {
      if (!tri_ghost(t)) {
        last_tri_ = t;
        break;
      }
    }
  }
  return vi;
}

VertIndex DelaunayMesh::insert_point(Vec2 p, bool respect_constraints,
                                     TriIndex hint) {
  // Sampled: point insertion is the per-triangle hot path; recording every
  // call would swamp the trace buffer, a 1/256 sample still shows the
  // latency shape of the Bowyer-Watson cavity walk.
  AERO_TRACE_SPAN_SAMPLED("delaunay", "bw_insert", 256);
  const LocateResult loc = locate(p, hint);
  switch (loc.kind) {
    case LocateResult::Kind::kOnVertex:
      return tv(loc.tri)[loc.edge];
    case LocateResult::Kind::kOnEdge: {
      if (tri_constrained(loc.tri, loc.edge)) {
        return insert_point_on_edge(p, loc.tri, loc.edge);
      }
      const TriIndex seeds[2] = {loc.tri, tn(loc.tri)[loc.edge]};
      return insert_into_cavity(p, seeds, 2, respect_constraints);
    }
    case LocateResult::Kind::kInside:
    case LocateResult::Kind::kOutside: {
      const TriIndex seeds[1] = {loc.tri};
      return insert_into_cavity(p, seeds, 1, respect_constraints);
    }
  }
  return -1;  // unreachable
}

VertIndex DelaunayMesh::insert_point_on_edge(Vec2 p, TriIndex t, int edge) {
  const VertIndex u = tv(t)[(edge + 1) % 3];
  const VertIndex w = tv(t)[(edge + 2) % 3];
  const TriIndex s = tn(t)[edge];
  assert(s != kNoTri);
  int sedge = -1;
  {
    const auto& sn = tn(s);
    for (int i = 0; i < 3; ++i) {
      if (sn[i] == t) {
        sedge = i;
        break;
      }
    }
  }
  const bool was_constrained = tri_constrained(t, edge);
  // Temporarily unmark so the cavity can span both sides of the split edge.
  set_constrained(t, edge, false);
  set_constrained(s, sedge, false);

  const TriIndex seeds[2] = {t, s};
  const VertIndex vi = insert_into_cavity(p, seeds, 2,
                                          /*respect_constraints=*/true);
  if (was_constrained) {
    for (const VertIndex end : {u, w}) {
      const auto [et, eslot] = find_edge(vi, end);
      assert(et != kNoTri);
      set_constrained(et, eslot, true);
      const TriIndex other = tn(et)[eslot];
      const auto& on = tn(other);
      for (int i = 0; i < 3; ++i) {
        if (on[i] == et) set_constrained(other, i, true);
      }
    }
  }
  return vi;
}

std::pair<TriIndex, int> DelaunayMesh::find_edge(VertIndex u,
                                                 VertIndex w) const {
  const TriIndex start = vert_tri_[static_cast<size_t>(u)];
  if (start == kNoTri) return {kNoTri, -1};
  TriIndex t = start;
  // Rotate around u; the sphere topology guarantees the orbit closes.
  do {
    const int k = index_of(t, u);
    assert(k >= 0);
    if (tv(t)[(k + 1) % 3] == w) {
      // Directed edge (u, w) is edge (k+... ) — edge containing (u, w) is the
      // one excluding the third vertex, slot (k + 2) % 3.
      return {t, (k + 2) % 3};
    }
    // Advance: cross the edge (v[k+2], v[k]) to rotate around u.
    t = tn(t)[(k + 1) % 3];
  } while (t != start && t != kNoTri);
  return {kNoTri, -1};
}

void DelaunayMesh::insert_segment(VertIndex u, VertIndex w) {
  if (u == w) return;
  const auto mark_constrained = [this](TriIndex t, int slot) {
    set_constrained(t, slot, true);
    const TriIndex o = tn(t)[slot];
    const auto& on = tn(o);
    for (int i = 0; i < 3; ++i) {
      if (on[i] == t) set_constrained(o, i, true);
    }
  };
  {
    const auto [t, slot] = find_edge(u, w);
    if (t != kNoTri) {
      mark_constrained(t, slot);
      return;
    }
  }

  const Vec2 pu = point(u);
  const Vec2 pw = point(w);

  // Scan the wedge fan around u: either a vertex lies exactly on the open
  // segment (split and recurse), or we find the triangle whose far edge the
  // segment exits through. For the CCW triangle (u, a, b) whose wedge
  // contains the direction u->w, a lies right of the line and b lies left.
  const TriIndex start = vert_tri_[static_cast<size_t>(u)];
  TriIndex entry = kNoTri;
  VertIndex split_vertex = kGhost;
  {
    TriIndex t = start;
    do {
      const auto& v = tv(t);
      const int k = index_of(t, u);
      const VertIndex a = v[(k + 1) % 3];
      const VertIndex b = v[(k + 2) % 3];
      if (v[2] != kGhost && a != kGhost && b != kGhost) {
        const double oa = orient2d(pu, pw, point(a));
        const double ob = orient2d(pu, pw, point(b));
        if (oa == 0.0 && (point(a) - pu).dot(pw - pu) > 0.0 &&
            distance2(point(a), pu) < distance2(pw, pu)) {
          split_vertex = a;
          break;
        }
        if (ob == 0.0 && (point(b) - pu).dot(pw - pu) > 0.0 &&
            distance2(point(b), pu) < distance2(pw, pu)) {
          split_vertex = b;
          break;
        }
        if (oa < 0.0 && ob > 0.0) {
          entry = t;
          break;
        }
      }
      t = tn(t)[(k + 1) % 3];
    } while (t != start);
  }
  if (split_vertex != kGhost) {
    insert_segment(u, split_vertex);
    insert_segment(split_vertex, w);
    return;
  }
  if (entry == kNoTri) {
    throw std::logic_error("insert_segment: no crossing wedge found");
  }

  // Walk the channel from u to w once, collecting every crossing edge as a
  // vertex pair (stable across flips). A vertex exactly on the open segment
  // splits the insertion.
  std::deque<std::pair<VertIndex, VertIndex>> queue;
  {
    TriIndex cur = entry;
    int cure = index_of(entry, u);
    while (true) {
      const VertIndex a = tv(cur)[(cure + 1) % 3];
      const VertIndex b = tv(cur)[(cure + 2) % 3];
      if (tri_constrained(cur, cure)) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "insert_segment: segment (%.17g,%.17g)-(%.17g,%.17g) "
                      "crosses constrained edge (%.17g,%.17g)-(%.17g,%.17g)",
                      pu.x, pu.y, pw.x, pw.y, point(a).x, point(a).y,
                      point(b).x, point(b).y);
        throw std::logic_error(buf);
      }
      queue.emplace_back(a, b);

      const TriIndex nb = tn(cur)[cure];
      const auto& nn = tn(nb);
      int nbslot = -1;
      for (int i = 0; i < 3; ++i) {
        if (nn[i] == cur) nbslot = i;
      }
      const VertIndex q = tv(nb)[nbslot];
      if (q == w) break;  // reached the far endpoint
      if (q == kGhost) {
        throw std::logic_error("insert_segment: channel left the hull");
      }
      const double oq = orient2d(pu, pw, point(q));
      if (oq == 0.0) {
        insert_segment(u, q);
        insert_segment(q, w);
        return;
      }
      // The segment continues through (q, a) or (q, b), whichever straddles.
      const int qslot = nbslot;
      // In nb, q is at qslot; edges (q, a) and (q, b) are the two slots
      // other than qslot; pick by which far vertex lies across the line.
      cure = oq > 0.0 ? (qslot + 2) % 3   // continue through edge (b, q)?
                      : (qslot + 1) % 3;
      // Edge (cure) of nb excludes its vertex `cure`; verify it straddles:
      // its endpoints are q and one of a/b with opposite orientation signs.
      {
        const VertIndex e1 = tv(nb)[(cure + 1) % 3];
        const VertIndex e2 = tv(nb)[(cure + 2) % 3];
        const double o1 = orient2d(pu, pw, point(e1));
        const double o2 = orient2d(pu, pw, point(e2));
        if (!((o1 > 0.0 && o2 < 0.0) || (o1 < 0.0 && o2 > 0.0))) {
          // Picked the wrong side; take the other non-shared edge.
          cure = oq > 0.0 ? (qslot + 1) % 3 : (qslot + 2) % 3;
        }
      }
      cur = nb;
    }
  }

  // Sloan's forcing loop: pop a crossing edge; if its quad is strictly
  // convex, flip it (the new diagonal is re-queued if it still crosses);
  // otherwise re-queue it and let its neighbors be processed first.
  std::vector<std::pair<VertIndex, VertIndex>> new_edges;
  std::size_t stall = 0;
  const std::size_t stall_limit = 64 + 8 * queue.size() * queue.size();
  while (!queue.empty()) {
    const auto [a, b] = queue.front();
    queue.pop_front();
    const auto [t, slot] = find_edge(a, b);
    if (t == kNoTri) continue;  // removed by an earlier flip
    {
      // Still crossing (u, w)?
      const double oa = orient2d(pu, pw, point(a));
      const double ob = orient2d(pu, pw, point(b));
      if (!((oa > 0.0 && ob < 0.0) || (oa < 0.0 && ob > 0.0))) continue;
    }
    const int e = (slot + 0) % 3;  // edge slot containing (a, b) is `slot`
    const VertIndex p = tv(t)[e];
    const TriIndex s = tn(t)[e];
    int sedge = -1;
    {
      const auto& sn = tn(s);
      for (int i = 0; i < 3; ++i) {
        if (sn[i] == t) sedge = i;
      }
    }
    const VertIndex q = tv(s)[sedge];
    bool convex = false;
    if (q != kGhost && p != kGhost) {
      const double op1 = orient2d(point(p), point(q), point(a));
      const double op2 = orient2d(point(p), point(q), point(b));
      convex = (op1 > 0.0 && op2 < 0.0) || (op1 < 0.0 && op2 > 0.0);
    }
    if (!convex) {
      queue.emplace_back(a, b);
      if (++stall > stall_limit) {
        throw std::logic_error("insert_segment: flip forcing stalled");
      }
      continue;
    }
    stall = 0;
    flip_edge(t, e);
    new_edges.emplace_back(p, q);
    // Re-queue the new diagonal if it still crosses the segment.
    const double op = orient2d(pu, pw, point(p));
    const double oq = orient2d(pu, pw, point(q));
    if ((op > 0.0 && oq < 0.0) || (op < 0.0 && oq > 0.0)) {
      queue.emplace_back(p, q);
    }
  }

  {
    const auto [et, eslot] = find_edge(u, w);
    if (et == kNoTri) {
      throw std::logic_error("insert_segment: edge missing after forcing");
    }
    mark_constrained(et, eslot);
  }

  // Restore the constrained-Delaunay property around the edges the forcing
  // pass created.
  for (const auto& [a, b] : new_edges) {
    const auto [et, eslot] = find_edge(a, b);
    if (et != kNoTri) legalize_edge(et, eslot);
  }
}

void DelaunayMesh::carve(const std::vector<Vec2>& hole_seeds) {
  std::vector<TriIndex> stack;
  // Phase 1: everything reachable from the outer face without crossing a
  // constrained edge is outside.
  for (TriIndex t = 0; t < static_cast<TriIndex>(tri_v_.size()); ++t) {
    if (tri_dead(t)) continue;
    if (tri_ghost(t)) {
      set_flag(t, kInside, false);
      stack.push_back(t);
    } else {
      set_flag(t, kInside, true);
    }
  }
  auto flood = [this, &stack]() {
    while (!stack.empty()) {
      const TriIndex t = stack.back();
      stack.pop_back();
      const auto& n = tn(t);
      for (int i = 0; i < 3; ++i) {
        if (tri_constrained(t, i)) continue;
        const TriIndex nb = n[i];
        if (nb == kNoTri) continue;
        if (tri_dead(nb) || !tri_inside(nb)) continue;
        set_flag(nb, kInside, false);
        stack.push_back(nb);
      }
    }
  };
  flood();

  // Phase 2: hole seeds.
  for (const Vec2 h : hole_seeds) {
    const LocateResult loc = locate(h);
    if (loc.kind == LocateResult::Kind::kOutside) continue;
    if (!tri_inside(loc.tri)) continue;
    set_flag(loc.tri, kInside, false);
    stack.push_back(loc.tri);
    flood();
  }
}

void DelaunayMesh::flip_edge(TriIndex t, int edge) {
  const TriIndex s = tn(t)[edge];
  assert(!tri_ghost(t) && !tri_ghost(s));
  int sedge = -1;
  {
    const auto& sn = tn(s);
    for (int i = 0; i < 3; ++i) {
      if (sn[i] == t) sedge = i;
    }
  }
  assert(sedge >= 0);

  const VertIndex p = tv(t)[edge];
  const VertIndex a = tv(t)[(edge + 1) % 3];
  const VertIndex b = tv(t)[(edge + 2) % 3];
  const VertIndex q = tv(s)[sedge];
  assert(tv(s)[(sedge + 1) % 3] == b && tv(s)[(sedge + 2) % 3] == a);

  const TriIndex t_bp = tn(t)[(edge + 1) % 3];
  const TriIndex t_pa = tn(t)[(edge + 2) % 3];
  const bool c_bp = tri_constrained(t, (edge + 1) % 3);
  const bool c_pa = tri_constrained(t, (edge + 2) % 3);
  const TriIndex s_aq = tn(s)[(sedge + 1) % 3];
  const TriIndex s_qb = tn(s)[(sedge + 2) % 3];
  const bool c_aq = tri_constrained(s, (sedge + 1) % 3);
  const bool c_qb = tri_constrained(s, (sedge + 2) % 3);

  // Reuse storage: t becomes (p, a, q), s becomes (q, b, p).
  tv(t) = {p, a, q};
  set_constrained(t, 0, c_aq);
  set_constrained(t, 1, false);
  set_constrained(t, 2, c_pa);
  tv(s) = {q, b, p};
  set_constrained(s, 0, c_bp);
  set_constrained(s, 1, false);
  set_constrained(s, 2, c_qb);
  tn(t) = {s_aq, s, t_pa};
  tn(s) = {t_bp, t, s_qb};

  // Fix the two backlinks that changed owners.
  {
    const auto& v_aq = tv(s_aq);
    auto& n_aq = tn(s_aq);
    for (int i = 0; i < 3; ++i) {
      if (n_aq[i] == s && v_aq[(i + 1) % 3] == q && v_aq[(i + 2) % 3] == a) {
        n_aq[i] = t;
      }
    }
  }
  {
    const auto& v_bp = tv(t_bp);
    auto& n_bp = tn(t_bp);
    for (int i = 0; i < 3; ++i) {
      if (n_bp[i] == t && v_bp[(i + 1) % 3] == p && v_bp[(i + 2) % 3] == b) {
        n_bp[i] = s;
      }
    }
  }

  vert_tri_[static_cast<size_t>(p)] = t;
  vert_tri_[static_cast<size_t>(a)] = t;
  vert_tri_[static_cast<size_t>(q)] = s;
  vert_tri_[static_cast<size_t>(b)] = s;
  last_tri_ = t;
}

void DelaunayMesh::legalize_edge(TriIndex t0, int e0) {
  legalize_stack_.clear();
  legalize_stack_.push_back({t0, e0});
  while (!legalize_stack_.empty()) {
    const auto [t, e] = legalize_stack_.back();
    legalize_stack_.pop_back();
    if (tri_dead(t) || tri_ghost(t) || tri_constrained(t, e)) continue;
    const TriIndex s = tn(t)[e];
    if (tri_ghost(s)) continue;
    int sedge = -1;
    {
      const auto& sn = tn(s);
      for (int i = 0; i < 3; ++i) {
        if (sn[i] == t) sedge = i;
      }
    }
    const VertIndex q = tv(s)[sedge];
    const auto& v = tv(t);
    if (incircle_fast(point(v[0]), point(v[1]), point(v[2]), point(q)) >
        0.0) {
      flip_edge(t, e);
      // After the flip t = (p, a, q) and s = (q, b, p); re-examine the four
      // outer edges (the re-check before each flip keeps this safe even if a
      // queued (tri, slot) pair has been reused by a later flip).
      legalize_stack_.push_back({t, 0});
      legalize_stack_.push_back({t, 2});
      legalize_stack_.push_back({s, 0});
      legalize_stack_.push_back({s, 2});
    }
  }
}

bool DelaunayMesh::check_topology() const {
  for (TriIndex t = 0; t < static_cast<TriIndex>(tri_v_.size()); ++t) {
    if (tri_dead(t)) continue;
    const auto& v = tv(t);
    const auto& n = tn(t);
    if (!tri_ghost(t)) {
      if (orient2d(point(v[0]), point(v[1]), point(v[2])) <= 0.0) {
        return false;  // not CCW / degenerate
      }
    } else if (v[0] == kGhost || v[1] == kGhost) {
      return false;  // ghost vertex must be in slot 2
    }
    for (int i = 0; i < 3; ++i) {
      const TriIndex nb = n[i];
      if (nb == kNoTri) return false;  // sphere: every edge has two sides
      if (tri_dead(nb)) return false;
      const auto& nbn = tn(nb);
      int back = -1;
      for (int j = 0; j < 3; ++j) {
        if (nbn[j] == t) back = j;
      }
      if (back < 0) return false;  // adjacency not mutual
      // Shared edge must have the same vertex set, opposite direction.
      const VertIndex a = v[(i + 1) % 3];
      const VertIndex b = v[(i + 2) % 3];
      const VertIndex c = tv(nb)[(back + 1) % 3];
      const VertIndex d = tv(nb)[(back + 2) % 3];
      if (!(a == d && b == c)) return false;
      if (tri_constrained(t, i) != tri_constrained(nb, back)) return false;
    }
  }
  return true;
}

bool DelaunayMesh::check_delaunay() const {
  for (TriIndex t = 0; t < static_cast<TriIndex>(tri_v_.size()); ++t) {
    if (!is_live_finite(t)) continue;
    const auto& v = tv(t);
    for (int i = 0; i < 3; ++i) {
      if (tri_constrained(t, i)) continue;
      const TriIndex nb = tn(t)[i];
      if (tri_ghost(nb)) continue;
      int back = -1;
      const auto& nbn = tn(nb);
      for (int j = 0; j < 3; ++j) {
        if (nbn[j] == t) back = j;
      }
      const VertIndex apex = tv(nb)[back];
      if (incircle(point(v[0]), point(v[1]), point(v[2]), point(apex)) >
          0.0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace aero
