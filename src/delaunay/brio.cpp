#include "delaunay/brio.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "geom/bbox.hpp"

namespace aero {

namespace {

/// Grid resolution of the Hilbert sort. 2^16 cells per axis is far below
/// double precision but far above what locality needs: points sharing a
/// cell are inserted consecutively anyway.
constexpr int kHilbertOrder = 16;

}  // namespace

std::uint64_t hilbert_d(std::uint32_t x, std::uint32_t y, int order) {
  std::uint64_t d = 0;
  for (std::uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) ? 1u : 0u;
    const std::uint32_t ry = (y & s) ? 1u : 0u;
    d += static_cast<std::uint64_t>(s) * s * ((3u * rx) ^ ry);
    // Rotate the quadrant so the curve stays continuous.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

std::vector<std::uint32_t> brio_order(const std::vector<Vec2>& pts) {
  const std::size_t n = pts.size();
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (n < 2) return perm;

  BBox2 box{pts[0], pts[0]};
  for (const Vec2 p : pts) box.expand(p);
  const double w = box.hi.x - box.lo.x;
  const double h = box.hi.y - box.lo.y;
  const double sx = w > 0.0 ? ((1u << kHilbertOrder) - 1) / w : 0.0;
  const double sy = h > 0.0 ? ((1u << kHilbertOrder) - 1) / h : 0.0;

  // Rounds: every point flips a fair coin per round, so round `r` (counted
  // from the last) keeps a fraction ~2^-(r+1) of the points. Small inputs
  // take a single round (pure Hilbert order); the cap keeps the first round
  // from degenerating below a useful seed size.
  int nrounds = 1;
  while ((n >> (nrounds + 5)) > 0 && nrounds < 24) ++nrounds;

  struct Key {
    std::uint8_t round;
    std::uint64_t hilbert;
  };
  std::vector<Key> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int heads =
        std::countr_one(splitmix64(static_cast<std::uint64_t>(i)));
    const int round = std::max(0, nrounds - 1 - heads);
    const auto gx = static_cast<std::uint32_t>((pts[i].x - box.lo.x) * sx);
    const auto gy = static_cast<std::uint32_t>((pts[i].y - box.lo.y) * sy);
    keys[i] = {static_cast<std::uint8_t>(round),
               hilbert_d(gx, gy, kHilbertOrder)};
  }
  std::sort(perm.begin(), perm.end(),
            [&keys](std::uint32_t a, std::uint32_t b) {
              if (keys[a].round != keys[b].round) {
                return keys[a].round < keys[b].round;
              }
              if (keys[a].hilbert != keys[b].hilbert) {
                return keys[a].hilbert < keys[b].hilbert;
              }
              return a < b;  // deterministic tiebreak
            });
  return perm;
}

std::vector<std::uint32_t> brio_scatter_order(const std::vector<Vec2>& pts) {
  const std::size_t n = pts.size();
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (n < 2) return perm;

  // Same round ladder as brio_order (the rounds are what keep the committed
  // mesh uniformly dense at every stage); the within-round key is a second,
  // independent splitmix64 stream, i.e. a deterministic shuffle.
  int nrounds = 1;
  while ((n >> (nrounds + 5)) > 0 && nrounds < 24) ++nrounds;

  struct Key {
    std::uint8_t round;
    std::uint64_t shuffle;
  };
  std::vector<Key> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int heads =
        std::countr_one(splitmix64(static_cast<std::uint64_t>(i)));
    const int round = std::max(0, nrounds - 1 - heads);
    keys[i] = {static_cast<std::uint8_t>(round),
               splitmix64(static_cast<std::uint64_t>(i) ^
                          0xc2b2ae3d27d4eb4full)};
  }
  std::sort(perm.begin(), perm.end(),
            [&keys](std::uint32_t a, std::uint32_t b) {
              if (keys[a].round != keys[b].round) {
                return keys[a].round < keys[b].round;
              }
              if (keys[a].shuffle != keys[b].shuffle) {
                return keys[a].shuffle < keys[b].shuffle;
              }
              return a < b;  // deterministic tiebreak
            });
  return perm;
}

}  // namespace aero
