#pragma once

#include <cstdint>
#include <vector>

#include "delaunay/mesh.hpp"  // VertIndex

namespace aero {

/// Guibas-Stolfi quad-edge structure, primal-only usage.
///
/// Each physical edge owns four directed quarter-edges (e, Rot e, Sym e,
/// InvRot e) stored contiguously; the edge algebra is pure index arithmetic:
///   Rot e    = (e & ~3) | ((e + 1) & 3)
///   Sym e    =  e ^ 2
///   InvRot e = (e & ~3) | ((e + 3) & 3)
/// Topology lives entirely in the Onext ring; Splice is the single mutator
/// (Guibas & Stolfi 1985). This is the classic substrate of the
/// divide-and-conquer Delaunay algorithm -- the algorithm Triangle runs,
/// including the "vertical cuts only" variant the paper enables for small
/// vertex sets.
class QuadEdge {
 public:
  using EdgeRef = std::uint32_t;
  static constexpr EdgeRef kNil = 0xffffffffu;

  static EdgeRef rot(EdgeRef e) { return (e & ~3u) | ((e + 1) & 3u); }
  static EdgeRef sym(EdgeRef e) { return e ^ 2u; }
  static EdgeRef rot_inv(EdgeRef e) { return (e & ~3u) | ((e + 3) & 3u); }

  EdgeRef onext(EdgeRef e) const { return next_[e]; }
  EdgeRef oprev(EdgeRef e) const { return rot(next_[rot(e)]); }
  EdgeRef lnext(EdgeRef e) const { return rot(next_[rot_inv(e)]); }
  EdgeRef lprev(EdgeRef e) const { return sym(next_[e]); }
  EdgeRef rnext(EdgeRef e) const { return rot_inv(next_[rot(e)]); }
  EdgeRef rprev(EdgeRef e) const { return next_[sym(e)]; }
  EdgeRef dnext(EdgeRef e) const { return sym(next_[sym(e)]); }
  EdgeRef dprev(EdgeRef e) const { return rot_inv(next_[rot_inv(e)]); }

  VertIndex org(EdgeRef e) const { return data_[e]; }
  VertIndex dest(EdgeRef e) const { return data_[sym(e)]; }
  void set_ends(EdgeRef e, VertIndex o, VertIndex d) {
    data_[e] = o;
    data_[sym(e)] = d;
  }

  /// A fresh edge o -> d, its own Onext ring (an isolated edge).
  EdgeRef make_edge(VertIndex o, VertIndex d);

  /// Guibas-Stolfi splice: swaps the Onext rings of a and b and of their
  /// duals, merging or splitting rings.
  void splice(EdgeRef a, EdgeRef b);

  /// Connect dest(a) to org(b) with a new edge so all three share faces.
  EdgeRef connect(EdgeRef a, EdgeRef b);

  /// Disconnect and recycle an edge.
  void delete_edge(EdgeRef e);

  bool dead(EdgeRef e) const { return dead_[e >> 2]; }
  std::size_t capacity() const { return next_.size(); }

  /// Test-only backdoor (defined in tests/test_audit.cpp): the audit tests
  /// corrupt the structure through it to prove audit_quadedge() detects each
  /// defect class. Never used by library code.
  struct TestAccess;

 private:
  // Chunked grow-only arenas (delaunay/chunked.hpp): same no-realloc /
  // stable-address properties as the mesh SoA arrays; the free list is
  // transient scratch and stays a plain vector.
  ChunkedArray<EdgeRef> next_;      ///< Onext per quarter-edge
  ChunkedArray<VertIndex> data_;    ///< origin vertex per primal quarter
  ChunkedArray<std::uint8_t> dead_; ///< per physical edge
  std::vector<EdgeRef> free_;       ///< recycled physical edges (base ids)
};

/// Divide-and-conquer Delaunay triangulation (Guibas-Stolfi) with vertical
/// cuts -- exactly the Triangle configuration the paper selects ("only use
/// vertical cuts for the divide-and-conquer algorithm, which improves the
/// performance for small vertex sets").
///
/// `points` must be sorted lexicographically (x, then y) and deduplicated.
/// Returns CCW triangles as vertex-index triples. Fully collinear inputs
/// yield an empty triangle list. All decisions use the exact predicates.
std::vector<std::array<VertIndex, 3>> dc_delaunay(
    const std::vector<Vec2>& points);

}  // namespace aero
