#include "solver/fem.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "geom/triangle_quality.hpp"

namespace aero {

void CsrMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
  y.assign(rows(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      acc += val[k] * x[col[k]];
    }
    y[r] = acc;
  }
}

FemProblem::FemProblem(const MergedMesh& mesh, double nu, Vec2 advection,
                       std::function<double(Vec2)> forcing,
                       std::function<double(Vec2)> dirichlet)
    : mesh_(mesh) {
  const std::size_t np = mesh.point_count();

  // Boundary vertices: endpoints of edges with a single incident triangle.
  std::vector<std::uint8_t> is_boundary(np, 0);
  {
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
    for (std::size_t t = 0; t < mesh.record_count(); ++t) {
      if (!mesh.alive(t)) continue;
      const std::array<std::uint32_t, 3>& tri = mesh.tri(t);
      for (int i = 0; i < 3; ++i) {
        auto a = tri[i];
        auto b = tri[(i + 1) % 3];
        if (b < a) std::swap(a, b);
        ++counts[{a, b}];
      }
    }
    for (const auto& [e, c] : counts) {
      if (c == 1) {
        is_boundary[e.first] = 1;
        is_boundary[e.second] = 1;
      }
    }
  }

  vertex_to_unknown_.assign(np, -1);
  boundary_value_.assign(np, 0.0);
  for (std::uint32_t v = 0; v < np; ++v) {
    if (is_boundary[v]) {
      boundary_value_[v] = dirichlet(mesh.point(v));
    } else {
      vertex_to_unknown_[v] = static_cast<std::int64_t>(free_.size());
      free_.push_back(v);
    }
  }

  // Element-wise assembly into a map-of-rows, then CSR.
  std::vector<std::map<std::uint32_t, double>> rows(free_.size());
  rhs_.assign(free_.size(), 0.0);

  for (std::size_t t = 0; t < mesh.record_count(); ++t) {
    if (!mesh.alive(t)) continue;
    const std::array<std::uint32_t, 3>& tri = mesh.tri(t);
    const std::uint32_t vid[3] = {tri[0], tri[1], tri[2]};
    const Vec2 p0 = mesh.point(vid[0]);
    const Vec2 p1 = mesh.point(vid[1]);
    const Vec2 p2 = mesh.point(vid[2]);
    const double area = signed_area(p0, p1, p2);
    if (area <= 0.0) continue;

    // P1 shape function gradients: grad phi_i = perp(opposite edge) / (2A).
    const Vec2 grad[3] = {
        Vec2{p1.y - p2.y, p2.x - p1.x} / (2.0 * area),
        Vec2{p2.y - p0.y, p0.x - p2.x} / (2.0 * area),
        Vec2{p0.y - p1.y, p1.x - p0.x} / (2.0 * area),
    };
    const Vec2 centroid{(p0.x + p1.x + p2.x) / 3.0,
                        (p0.y + p1.y + p2.y) / 3.0};
    const double f_mid = forcing ? forcing(centroid) : 0.0;

    for (int i = 0; i < 3; ++i) {
      const std::int64_t row = vertex_to_unknown_[vid[i]];
      if (row < 0) continue;
      // Load: one-point quadrature.
      rhs_[static_cast<std::size_t>(row)] += f_mid * area / 3.0;
      for (int j = 0; j < 3; ++j) {
        // Diffusion + advection (one-point quadrature for b . grad).
        const double a_ij = nu * grad[i].dot(grad[j]) * area +
                            advection.dot(grad[j]) * area / 3.0;
        const std::int64_t cj = vertex_to_unknown_[vid[j]];
        if (cj >= 0) {
          rows[static_cast<std::size_t>(row)][static_cast<std::uint32_t>(cj)] +=
              a_ij;
        } else {
          rhs_[static_cast<std::size_t>(row)] -=
              a_ij * boundary_value_[vid[j]];
        }
      }
    }
  }

  matrix_.row_ptr.assign(free_.size() + 1, 0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    matrix_.row_ptr[r + 1] = matrix_.row_ptr[r] + rows[r].size();
  }
  matrix_.col.reserve(matrix_.row_ptr.back());
  matrix_.val.reserve(matrix_.row_ptr.back());
  for (const auto& row : rows) {
    for (const auto& [c, v] : row) {
      matrix_.col.push_back(c);
      matrix_.val.push_back(v);
    }
  }
}

SolveResult FemProblem::solve(const SolveOptions& opts) const {
  SolveResult result;
  const std::size_t n = matrix_.rows();
  result.u.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Diagonal extraction.
  std::vector<double> diag(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = matrix_.row_ptr[r]; k < matrix_.row_ptr[r + 1]; ++k) {
      if (matrix_.col[k] == r) diag[r] = matrix_.val[k];
    }
  }

  double rhs_norm = 0.0;
  for (const double b : rhs_) rhs_norm += b * b;
  rhs_norm = std::sqrt(rhs_norm);
  if (rhs_norm == 0.0) rhs_norm = 1.0;

  std::vector<double> ax(n);
  std::vector<double> next(n);
  result.residual_history.reserve(1024);

  if (opts.scheme == IterScheme::kConjugateGradient) {
    // Jacobi-preconditioned CG from the zero initial guess.
    std::vector<double> r = rhs_;
    std::vector<double> z(n), p(n), ap(n);
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
    p = z;
    double rz = 0.0;
    for (std::size_t i = 0; i < n; ++i) rz += r[i] * z[i];
    for (std::size_t it = 0; it < opts.max_iterations; ++it) {
      matrix_.multiply(p, ap);
      double pap = 0.0;
      for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
      if (pap == 0.0) break;
      const double alpha = rz / pap;
      double rnorm = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        result.u[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
        rnorm += r[i] * r[i];
      }
      rnorm = std::sqrt(rnorm) / rhs_norm;
      result.residual_history.push_back(rnorm);
      result.iterations = it + 1;
      if (rnorm < opts.tolerance) {
        result.converged = true;
        break;
      }
      double rz_new = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        z[i] = r[i] / diag[i];
        rz_new += r[i] * z[i];
      }
      const double beta = rz_new / rz;
      rz = rz_new;
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    return result;
  }

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (opts.scheme == IterScheme::kJacobi) {
      matrix_.multiply(result.u, ax);
      for (std::size_t r = 0; r < n; ++r) {
        next[r] = result.u[r] + opts.omega * (rhs_[r] - ax[r]) / diag[r];
      }
      result.u.swap(next);
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        double acc = rhs_[r];
        double d = diag[r];
        for (std::size_t k = matrix_.row_ptr[r]; k < matrix_.row_ptr[r + 1];
             ++k) {
          if (matrix_.col[k] == r) continue;
          acc -= matrix_.val[k] * result.u[matrix_.col[k]];
        }
        result.u[r] =
            (1.0 - opts.omega) * result.u[r] + opts.omega * acc / d;
      }
    }

    // Residual check (every iteration: the history is the figure's series).
    matrix_.multiply(result.u, ax);
    double rnorm = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double e = rhs_[r] - ax[r];
      rnorm += e * e;
    }
    rnorm = std::sqrt(rnorm) / rhs_norm;
    result.residual_history.push_back(rnorm);
    result.iterations = it + 1;
    if (rnorm < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<double> FemProblem::expand(const std::vector<double>& u) const {
  std::vector<double> full = boundary_value_;
  for (std::size_t i = 0; i < free_.size(); ++i) {
    full[free_[i]] = u[i];
  }
  return full;
}

}  // namespace aero
