#pragma once

#include <functional>
#include <vector>

#include "core/merged_mesh.hpp"

namespace aero {

/// Compressed sparse row matrix (symmetric structure, general values).
struct CsrMatrix {
  std::vector<std::size_t> row_ptr;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  std::size_t rows() const { return row_ptr.size() - 1; }

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;
};

/// Iteration schemes for the stationary solver.
enum class IterScheme {
  kJacobi,
  kGaussSeidel,
  /// Jacobi-preconditioned conjugate gradients. Valid only for symmetric
  /// problems (zero advection); used by the Figure 16 convergence study so
  /// the 1e-12 tolerance is reachable on large meshes.
  kConjugateGradient,
};

/// Options of the convergence study.
struct SolveOptions {
  IterScheme scheme = IterScheme::kGaussSeidel;
  double tolerance = 1e-12;  ///< relative residual (paper Figure 16: 1e-12)
  std::size_t max_iterations = 200000;
  double omega = 1.0;  ///< relaxation factor
};

/// Result of an iterative solve.
struct SolveResult {
  std::vector<double> u;               ///< solution per mesh vertex
  std::vector<double> residual_history;///< relative residual per iteration
  std::size_t iterations = 0;
  bool converged = false;
};

/// P1 Galerkin discretization of the steady advection-diffusion problem
///   -div(nu grad u) + b . grad u = f
/// on the triangulation, with Dirichlet values on the boundary vertices.
/// This is the substitute for the paper's FUN3D runs: the convergence
/// iteration count of a stationary scheme on the same anisotropic vs
/// isotropic meshes reproduces the trade-off of Figure 16.
class FemProblem {
 public:
  /// `dirichlet` returns the boundary value at a boundary vertex position
  /// (applied at every vertex of a count-1 edge).
  FemProblem(const MergedMesh& mesh, double nu, Vec2 advection,
             std::function<double(Vec2)> forcing,
             std::function<double(Vec2)> dirichlet);

  /// Run the stationary iteration from a zero initial guess.
  SolveResult solve(const SolveOptions& opts) const;

  std::size_t unknowns() const { return matrix_.rows(); }
  const CsrMatrix& matrix() const { return matrix_; }
  const std::vector<double>& rhs() const { return rhs_; }
  /// Mesh vertex index of each unknown.
  const std::vector<std::uint32_t>& free_vertices() const { return free_; }
  /// Full per-vertex field from a solution vector (boundary values filled).
  std::vector<double> expand(const std::vector<double>& u) const;

 private:
  const MergedMesh& mesh_;
  CsrMatrix matrix_;
  std::vector<double> rhs_;
  std::vector<std::uint32_t> free_;            ///< unknown -> vertex
  std::vector<std::int64_t> vertex_to_unknown_;///< vertex -> unknown or -1
  std::vector<double> boundary_value_;         ///< per vertex (0 if free)
};

}  // namespace aero
