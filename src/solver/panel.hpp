#pragma once

#include <vector>

#include "airfoil/geometry.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// Hess-Smith panel method: constant-strength source panels on every surface
/// segment plus one vortex strength per element, closed with the Kutta
/// condition at each trailing edge. This is the qualitative flow-field
/// substitute for the paper's FUN3D runs (Figures 14 and 15): it produces
/// the surface pressure distribution and the velocity field the figures
/// visualize (high pressure below / low above at incidence; acceleration
/// through the slat gaps).
class PanelMethod {
 public:
  /// `alpha` is the angle of attack in radians; freestream speed is 1.
  PanelMethod(const AirfoilConfig& config, double alpha);

  /// Velocity at a field point (freestream + induced).
  Vec2 velocity(Vec2 p) const;

  /// Pressure coefficient Cp = 1 - |V|^2.
  double pressure_coefficient(Vec2 p) const {
    const Vec2 v = velocity(p);
    return 1.0 - v.norm2();
  }

  /// Local "Mach" proxy: M_inf * |V| / V_inf.
  double mach(Vec2 p, double mach_inf) const {
    return mach_inf * velocity(p).norm();
  }

  /// Surface pressure coefficient at each panel midpoint (per element,
  /// concatenated; use panel_counts() to split).
  std::vector<double> surface_cp() const;
  const std::vector<std::size_t>& panel_counts() const {
    return panels_per_element_;
  }

  /// Lift coefficient from the integrated circulation (Kutta-Joukowski).
  double lift_coefficient() const;

 private:
  struct Panel {
    Vec2 a, b;        ///< endpoints (surface order)
    Vec2 mid;         ///< collocation point
    Vec2 tangent;     ///< unit, a -> b
    Vec2 normal;      ///< unit outward
    double length;
    std::size_t element;
  };

  /// Velocity induced at p by a unit-strength source panel / vortex panel.
  static void panel_influence(const Panel& panel, Vec2 p, Vec2& source_vel,
                              Vec2& vortex_vel);

  std::vector<Panel> panels_;
  std::vector<double> source_strength_;   ///< per panel
  std::vector<double> vortex_strength_;   ///< per element
  std::vector<std::size_t> panels_per_element_;
  Vec2 freestream_;
  double alpha_;
};

}  // namespace aero
