#include "solver/panel.hpp"

#include <cmath>
#include <stdexcept>

namespace aero {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Dense Gaussian elimination with partial pivoting (the influence matrix is
/// small and dense; no substrate needed).
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::fabs(a[r][k]) > std::fabs(a[pivot][k])) pivot = r;
    }
    if (a[pivot][k] == 0.0) {
      throw std::runtime_error("panel method: singular influence matrix");
    }
    std::swap(a[k], a[pivot]);
    std::swap(b[k], b[pivot]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a[r][k] / a[k][k];
      if (f == 0.0) continue;
      for (std::size_t c = k; c < n; ++c) a[r][c] -= f * a[k][c];
      b[r] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t k = n; k-- > 0;) {
    double acc = b[k];
    for (std::size_t c = k + 1; c < n; ++c) acc -= a[k][c] * x[c];
    x[k] = acc / a[k][k];
  }
  return x;
}

}  // namespace

void PanelMethod::panel_influence(const Panel& panel, Vec2 p, Vec2& source_vel,
                                  Vec2& vortex_vel) {
  // Local frame: x along the tangent from endpoint a, y along the normal.
  const Vec2 d = p - panel.a;
  const double x = d.dot(panel.tangent);
  const double y = d.dot(panel.normal);
  const double len = panel.length;

  if (p == panel.mid) {
    // Self-influence of the collocation point: half-strength jump.
    source_vel = panel.normal * 0.5;
    vortex_vel = panel.tangent * 0.5;
    return;
  }

  const double r1sq = x * x + y * y;
  const double r2sq = (x - len) * (x - len) + y * y;
  const double theta1 = std::atan2(y, x);
  const double theta2 = std::atan2(y, x - len);
  const double dln = 0.5 * std::log(r1sq / r2sq);
  const double dth = theta2 - theta1;

  const double su = dln / (2.0 * kPi);
  const double sv = dth / (2.0 * kPi);
  source_vel = panel.tangent * su + panel.normal * sv;

  const double vu = dth / (2.0 * kPi);
  const double vv = -dln / (2.0 * kPi);
  vortex_vel = panel.tangent * vu + panel.normal * vv;
}

PanelMethod::PanelMethod(const AirfoilConfig& config, double alpha)
    : alpha_(alpha) {
  freestream_ = Vec2{std::cos(alpha), std::sin(alpha)};

  for (std::size_t e = 0; e < config.elements.size(); ++e) {
    const auto& surf = config.elements[e].surface;
    const std::size_t n = surf.size();
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 a = surf[i];
      const Vec2 b = surf[(i + 1) % n];
      const double len = distance(a, b);
      if (len == 0.0) continue;
      Panel panel;
      panel.a = a;
      panel.b = b;
      panel.mid = midpoint(a, b);
      panel.length = len;
      panel.tangent = (b - a) / len;
      // CCW surface: outward normal is the tangent rotated by -90 degrees.
      panel.normal = Vec2{panel.tangent.y, -panel.tangent.x};
      panel.element = e;
      panels_.push_back(panel);
      ++count;
    }
    panels_per_element_.push_back(count);
  }

  const std::size_t np = panels_.size();
  const std::size_t ne = config.elements.size();
  const std::size_t dim = np + ne;
  std::vector<std::vector<double>> a(dim, std::vector<double>(dim, 0.0));
  std::vector<double> rhs(dim, 0.0);

  // Flow tangency at every collocation point.
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      Vec2 sv, vv;
      panel_influence(panels_[j], panels_[i].mid, sv, vv);
      a[i][j] = sv.dot(panels_[i].normal);
      a[i][np + panels_[j].element] += vv.dot(panels_[i].normal);
    }
    rhs[i] = -freestream_.dot(panels_[i].normal);
  }

  // Kutta condition per element: equal-and-opposite tangential velocities on
  // the two panels adjacent to the trailing edge (the first and last panel
  // of the element's closed polyline, which starts at the trailing edge).
  std::size_t base = 0;
  for (std::size_t e = 0; e < ne; ++e) {
    const std::size_t first = base;
    const std::size_t last = base + panels_per_element_[e] - 1;
    const std::size_t row = np + e;
    for (std::size_t j = 0; j < np; ++j) {
      Vec2 sv1, vv1, sv2, vv2;
      panel_influence(panels_[j], panels_[first].mid, sv1, vv1);
      panel_influence(panels_[j], panels_[last].mid, sv2, vv2);
      a[row][j] = sv1.dot(panels_[first].tangent) +
                  sv2.dot(panels_[last].tangent);
      a[row][np + panels_[j].element] +=
          vv1.dot(panels_[first].tangent) + vv2.dot(panels_[last].tangent);
    }
    rhs[row] = -freestream_.dot(panels_[first].tangent) -
               freestream_.dot(panels_[last].tangent);
    base += panels_per_element_[e];
  }

  const std::vector<double> solution = solve_dense(std::move(a), std::move(rhs));
  source_strength_.assign(solution.begin(),
                          solution.begin() + static_cast<std::ptrdiff_t>(np));
  vortex_strength_.assign(solution.begin() + static_cast<std::ptrdiff_t>(np),
                          solution.end());
}

Vec2 PanelMethod::velocity(Vec2 p) const {
  Vec2 v = freestream_;
  for (std::size_t j = 0; j < panels_.size(); ++j) {
    Vec2 sv, vv;
    panel_influence(panels_[j], p, sv, vv);
    v += sv * source_strength_[j] + vv * vortex_strength_[panels_[j].element];
  }
  return v;
}

std::vector<double> PanelMethod::surface_cp() const {
  std::vector<double> cp;
  cp.reserve(panels_.size());
  for (const Panel& panel : panels_) {
    const double vt = velocity(panel.mid).dot(panel.tangent);
    cp.push_back(1.0 - vt * vt);
  }
  return cp;
}

double PanelMethod::lift_coefficient() const {
  // Kutta-Joukowski: Cl = 2 Gamma / (V c) with Gamma the clockwise
  // circulation; our vortex strengths are counter-clockwise-positive, hence
  // the sign flip. Gamma_e = gamma_e * perimeter_e.
  double gamma_total = 0.0;
  for (const Panel& panel : panels_) {
    gamma_total += vortex_strength_[panel.element] * panel.length;
  }
  return -2.0 * gamma_total;
}

}  // namespace aero
