#pragma once

#include <span>
#include <string>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// One body of a (possibly multi-element) configuration: a closed
/// counter-clockwise surface polyline (the closing edge is implicit between
/// the last and first point).
struct AirfoilElement {
  std::string name;
  std::vector<Vec2> surface;

  BBox2 bbox() const {
    BBox2 b;
    for (const Vec2 p : surface) b.expand(p);
    return b;
  }

  /// A point strictly inside the body (hole seed for carving).
  Vec2 interior_point() const;

  /// Outward unit normal at each surface vertex: the angle bisector of the
  /// two adjacent edge normals (for a CCW polyline the outward side is the
  /// right-hand side of the traversal direction).
  std::vector<Vec2> vertex_normals() const;

  /// Apply scale, rotation (radians, about the origin), then translation.
  AirfoilElement transformed(double scale, double rotation,
                             Vec2 translation) const;
};

/// A full configuration: one or more elements plus the reference chord.
struct AirfoilConfig {
  std::vector<AirfoilElement> elements;
  double chord = 1.0;

  BBox2 bbox() const {
    BBox2 b;
    for (const auto& e : elements) b.expand(e.bbox());
    return b;
  }
  std::size_t surface_point_count() const {
    std::size_t n = 0;
    for (const auto& e : elements) n += e.surface.size();
    return n;
  }
};

/// Single NACA 0012 at zero incidence (the paper's Figure 2 geometry).
AirfoilConfig make_naca0012(std::size_t points_per_side, bool sharp_te = true);

/// Synthetic three-element high-lift configuration standing in for the
/// 30P30N: a deployed leading-edge slat with a concave cove, a main element
/// with a cove at its trailing lower surface, and a slotted trailing-edge
/// flap with a blunt trailing edge. Exercises every special case of the
/// paper's Figure 13: self-intersections in the coves, multi-element ray
/// intersections in the slat/main and main/flap gaps, a sharp trailing edge
/// cusp (slat, main) and a blunt trailing edge (flap).
AirfoilConfig make_three_element(std::size_t points_per_side);

/// Carve a circular-arc concavity ("cove") into a surface polyline between
/// parameter fractions [t0, t1] of the vertex range, pushing vertices toward
/// the interior by up to `depth` (smoothly feathered at the ends). Used to
/// build the high-lift coves that trigger self-intersecting rays.
void carve_cove(std::vector<Vec2>& surface, double t0, double t1, double depth);

/// True if the closed polyline has no self-intersections (adjacent edges may
/// share their common endpoint). Every generated element must be simple.
bool polygon_is_simple(std::span<const Vec2> polygon);

}  // namespace aero
