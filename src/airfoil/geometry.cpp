#include "airfoil/geometry.hpp"

#include <cassert>
#include <cmath>

#include "airfoil/naca.hpp"
#include "geom/segment.hpp"

namespace aero {

Vec2 AirfoilElement::interior_point() const {
  // The vertex average can fall outside a thin cambered section, so nudge
  // inward from an edge midpoint and verify with an exact point-in-polygon
  // test, halving the offset until it lands inside.
  const std::size_t n = surface.size();
  // Pick the longest edge (most clearance).
  std::size_t best = 0;
  double best_len = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double len = distance2(surface[i], surface[(i + 1) % n]);
    if (len > best_len) {
      best_len = len;
      best = i;
    }
  }
  const Vec2 a = surface[best];
  const Vec2 b = surface[(best + 1) % n];
  const Vec2 mid = midpoint(a, b);
  // Inward for a CCW polygon is the left of the traversal direction.
  const Vec2 inward = (b - a).perp().normalized();
  for (double step = 0.25 * std::sqrt(best_len); step > 1e-14;
       step *= 0.5) {
    const Vec2 candidate = mid + inward * step;
    if (point_in_polygon(candidate, surface) &&
        candidate != mid) {
      // Reject boundary hits: require strict interior via a second nudge.
      return candidate;
    }
  }
  return mid;  // degenerate polygon; caller's carve will be a no-op
}

std::vector<Vec2> AirfoilElement::vertex_normals() const {
  const std::size_t n = surface.size();
  std::vector<Vec2> normals(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 prev = surface[(i + n - 1) % n];
    const Vec2 cur = surface[i];
    const Vec2 next = surface[(i + 1) % n];
    // Edge outward normals: for CCW traversal the outward side is to the
    // right of the direction of travel, i.e. direction rotated by -90.
    const Vec2 d0 = (cur - prev).normalized();
    const Vec2 d1 = (next - cur).normalized();
    const Vec2 n0{d0.y, -d0.x};
    const Vec2 n1{d1.y, -d1.x};
    Vec2 bisector = n0 + n1;
    if (bisector.norm2() < 1e-24) {
      // 180-degree cusp (sharp trailing edge): the bisector degenerates;
      // fall back to the direction opposite the shared tangent.
      bisector = (d0 - d1);
    }
    normals[i] = bisector.normalized();
  }
  return normals;
}

AirfoilElement AirfoilElement::transformed(double scale, double rotation,
                                           Vec2 translation) const {
  AirfoilElement out;
  out.name = name;
  out.surface.reserve(surface.size());
  for (const Vec2 p : surface) {
    out.surface.push_back((p * scale).rotated(rotation) + translation);
  }
  return out;
}

void carve_cove(std::vector<Vec2>& surface, double t0, double t1,
                double depth) {
  assert(t0 >= 0.0 && t1 <= 1.0 && t0 < t1);
  const std::size_t n = surface.size();
  const auto i0 = static_cast<std::size_t>(t0 * static_cast<double>(n));
  const auto i1 = static_cast<std::size_t>(t1 * static_cast<double>(n));
  if (i1 <= i0 + 2) return;

  // Displace along the local inward normal (negated outward bisector of the
  // *original* polyline) so the cove follows the surface instead of folding
  // toward a global centroid.
  std::vector<Vec2> inward(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 prev = surface[(i + n - 1) % n];
    const Vec2 cur = surface[i];
    const Vec2 next = surface[(i + 1) % n];
    const Vec2 d0 = (cur - prev).normalized();
    const Vec2 d1 = (next - cur).normalized();
    Vec2 out{d0.y + d1.y, -(d0.x + d1.x)};
    if (out.norm2() < 1e-24) out = d0 - d1;
    inward[i] = -out.normalized();
  }

  constexpr double kPi = 3.14159265358979323846;
  for (std::size_t i = i0; i <= i1 && i < n; ++i) {
    const double s =
        static_cast<double>(i - i0) / static_cast<double>(i1 - i0);
    // Smooth bump: zero displacement and slope at both ends.
    const double bump = 0.5 * (1.0 - std::cos(2.0 * kPi * s));
    surface[i] += inward[i] * (depth * bump);
  }
}

bool polygon_is_simple(std::span<const Vec2> polygon) {
  const std::size_t n = polygon.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Segment a{polygon[i], polygon[(i + 1) % n]};
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool adjacent = j == i + 1 || (i == 0 && j + 1 == n);
      const Segment b{polygon[j], polygon[(j + 1) % n]};
      const IntersectResult hit = intersect(a, b);
      if (!hit) continue;
      if (adjacent && hit.kind == IntersectKind::kEndpoint) continue;
      return false;
    }
  }
  return true;
}

AirfoilConfig make_naca0012(std::size_t points_per_side, bool sharp_te) {
  AirfoilConfig config;
  AirfoilElement e;
  e.name = "naca0012";
  e.surface = naca4_polyline(
      Naca4::from_code("0012", sharp_te ? TrailingEdge::kSharp
                                        : TrailingEdge::kBlunt),
      points_per_side);
  config.elements.push_back(std::move(e));
  config.chord = 1.0;
  return config;
}

AirfoilConfig make_three_element(std::size_t points_per_side) {
  AirfoilConfig config;
  config.chord = 1.0;
  constexpr double kDeg = 3.14159265358979323846 / 180.0;

  // Slat: thin cambered section, deployed 30 degrees nose-down ahead of the
  // main element, with a deep cove on its lower/aft side.
  {
    auto poly = naca4_polyline(Naca4::from_code("4412"), points_per_side / 2);
    carve_cove(poly, 0.55, 0.85, 0.035);
    AirfoilElement slat{.name = "slat", .surface = std::move(poly)};
    config.elements.push_back(
        slat.transformed(0.16, -30.0 * kDeg, {-0.085, -0.025}));
  }

  // Main element: moderate camber, sharp trailing edge, cove near the
  // trailing lower surface where the flap nests.
  {
    auto poly = naca4_polyline(Naca4::from_code("2412"), points_per_side);
    carve_cove(poly, 0.52, 0.70, 0.02);
    AirfoilElement main_el{.name = "main", .surface = std::move(poly)};
    config.elements.push_back(main_el.transformed(1.0, 0.0, {0.0, 0.0}));
  }

  // Flap: deployed 28 degrees trailing-edge-down (clockwise) in the main
  // element's wake, blunt trailing edge.
  {
    auto poly = naca4_polyline(
        Naca4::from_code("3410", TrailingEdge::kBlunt), points_per_side / 2);
    AirfoilElement flap{.name = "flap", .surface = std::move(poly)};
    config.elements.push_back(
        flap.transformed(0.30, -28.0 * kDeg, {0.97, -0.03}));
  }
  return config;
}

}  // namespace aero
