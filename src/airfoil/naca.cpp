#include "airfoil/naca.hpp"

#include <cmath>
#include <stdexcept>

namespace aero {

Naca4 Naca4::from_code(const std::string& code, TrailingEdge te) {
  if (code.size() != 4) {
    throw std::invalid_argument("NACA 4-digit code must have 4 digits");
  }
  Naca4 p;
  p.max_camber = (code[0] - '0') / 100.0;
  p.camber_position = (code[1] - '0') / 10.0;
  p.thickness = ((code[2] - '0') * 10 + (code[3] - '0')) / 100.0;
  p.trailing_edge = te;
  return p;
}

double naca4_thickness(const Naca4& params, double x) {
  const double t = params.thickness;
  // The -0.1036 final coefficient closes the trailing edge exactly; the
  // original -0.1015 leaves the classic finite base thickness.
  const double a4 =
      params.trailing_edge == TrailingEdge::kSharp ? -0.1036 : -0.1015;
  return 5.0 * t *
         (0.2969 * std::sqrt(x) - 0.1260 * x - 0.3516 * x * x +
          0.2843 * x * x * x + a4 * x * x * x * x);
}

void naca4_camber(const Naca4& params, double x, double& yc, double& slope) {
  const double m = params.max_camber;
  const double p = params.camber_position;
  if (m == 0.0 || p == 0.0) {
    yc = 0.0;
    slope = 0.0;
    return;
  }
  if (x < p) {
    yc = m / (p * p) * (2.0 * p * x - x * x);
    slope = 2.0 * m / (p * p) * (p - x);
  } else {
    yc = m / ((1.0 - p) * (1.0 - p)) * ((1.0 - 2.0 * p) + 2.0 * p * x - x * x);
    slope = 2.0 * m / ((1.0 - p) * (1.0 - p)) * (p - x);
  }
}

std::vector<Vec2> naca4_polyline(const Naca4& params,
                                 std::size_t points_per_side) {
  if (points_per_side < 8) {
    throw std::invalid_argument("need at least 8 points per side");
  }
  const std::size_t n = points_per_side;
  std::vector<Vec2> upper, lower;
  upper.reserve(n);
  lower.reserve(n);
  constexpr double kPi = 3.14159265358979323846;

  for (std::size_t i = 0; i < n; ++i) {
    // Cosine clustering: dense at both the leading and trailing edge.
    const double beta = kPi * static_cast<double>(i) / static_cast<double>(n - 1);
    const double x = 0.5 * (1.0 - std::cos(beta));
    const double yt = naca4_thickness(params, x);
    double yc, slope;
    naca4_camber(params, x, yc, slope);
    const double theta = std::atan(slope);
    upper.push_back({x - yt * std::sin(theta), yc + yt * std::cos(theta)});
    lower.push_back({x + yt * std::sin(theta), yc - yt * std::cos(theta)});
  }

  // Assemble CCW: trailing edge -> upper surface backwards (x descending)
  // -> leading edge -> lower surface forwards (x ascending) -> (implicitly
  // closed back to the trailing edge).
  std::vector<Vec2> poly;
  poly.reserve(2 * n);
  if (params.trailing_edge == TrailingEdge::kSharp) {
    // Upper and lower trailing-edge points coincide; emit once.
    for (std::size_t i = n; i-- > 1;) poly.push_back(upper[i]);
    poly.push_back(upper[0]);  // leading edge (x = 0)
    for (std::size_t i = 1; i + 1 < n; ++i) poly.push_back(lower[i]);
  } else {
    for (std::size_t i = n; i-- > 1;) poly.push_back(upper[i]);
    poly.push_back(upper[0]);
    for (std::size_t i = 1; i < n; ++i) poly.push_back(lower[i]);
  }
  return poly;
}

}  // namespace aero
