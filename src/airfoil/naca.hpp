#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/vec2.hpp"

namespace aero {

/// Trailing-edge treatment for generated sections.
enum class TrailingEdge {
  kSharp,  ///< closed, zero-thickness trailing edge (slope discontinuity cusp)
  kBlunt,  ///< finite-thickness trailing edge closed by a base segment
};

/// Parameters of a NACA 4-digit section (e.g. 0012: camber 0, position 0,
/// thickness 0.12).
struct Naca4 {
  double max_camber = 0.0;       ///< m, fraction of chord (first digit / 100)
  double camber_position = 0.0;  ///< p, fraction of chord (second digit / 10)
  double thickness = 0.12;       ///< t, fraction of chord (last two digits / 100)
  TrailingEdge trailing_edge = TrailingEdge::kSharp;

  /// Parse a 4-digit code like "0012" or "2412".
  static Naca4 from_code(const std::string& code,
                         TrailingEdge te = TrailingEdge::kSharp);
};

/// Generate a closed counter-clockwise surface polyline of a NACA 4-digit
/// section with unit chord, leading edge at the origin, chord along +x.
///
/// Points are cosine-clustered toward the leading and trailing edges (where
/// curvature and the paper's high-gradient stagnation regions live). The
/// polyline starts at the trailing edge, runs over the upper surface to the
/// leading edge and back along the lower surface; it is closed implicitly
/// (last point != first point; the closing edge is last->first). For a blunt
/// trailing edge the upper and lower TE points are distinct and the base is
/// the closing segment, giving the two slope discontinuities of the paper's
/// Figure 13(e).
std::vector<Vec2> naca4_polyline(const Naca4& params, std::size_t points_per_side);

/// Thickness distribution y_t(x) of the NACA 4-digit family at unit chord.
double naca4_thickness(const Naca4& params, double x);

/// Camber line y_c(x) and its slope at unit chord.
void naca4_camber(const Naca4& params, double x, double& yc, double& slope);

}  // namespace aero
