#include "spatial/adt.hpp"

#include <cassert>

namespace aero {

Range4 overlap_range(const BBox2& q, const BBox2& world) {
  // A stored extent box (x0, y0, x1, y1) overlaps q iff
  //   x0 <= q.hi.x  and  y0 <= q.hi.y  and  x1 >= q.lo.x  and  y1 >= q.lo.y.
  // Expressed as a 4D interval with the world box providing the open sides.
  Range4 r;
  r.lo = {world.lo.x, world.lo.y, q.lo.x, q.lo.y};
  r.hi = {q.hi.x, q.hi.y, world.hi.x, world.hi.y};
  return r;
}

AlternatingDigitalTree::AlternatingDigitalTree(const BBox2& world)
    : world_(world) {
  assert(!world.empty());
}

void AlternatingDigitalTree::insert(const BBox2& box, std::uint32_t id) {
  Node fresh{to_point4(box), id, -1, -1};
  if (nodes_.empty()) {
    nodes_.push_back(fresh);
    return;
  }

  Point4 lo{world_.lo.x, world_.lo.y, world_.lo.x, world_.lo.y};
  Point4 hi{world_.hi.x, world_.hi.y, world_.hi.x, world_.hi.y};
  std::int32_t current = 0;
  int depth = 0;
  while (true) {
    const int k = depth % 4;
    const double mid = (lo[k] + hi[k]) / 2.0;
    Node& node = nodes_[static_cast<std::size_t>(current)];
    const bool go_left = fresh.point[k] < mid;
    std::int32_t& child = go_left ? node.left : node.right;
    if (child < 0) {
      // Appending may reallocate nodes_, so compute the index first and do
      // not touch `node` afterwards.
      const auto new_index = static_cast<std::int32_t>(nodes_.size());
      child = new_index;
      nodes_.push_back(fresh);
      return;
    }
    if (go_left) {
      hi[k] = mid;
    } else {
      lo[k] = mid;
    }
    current = child;
    ++depth;
  }
}

std::vector<std::uint32_t> AlternatingDigitalTree::query_overlaps(
    const BBox2& query) const {
  std::vector<std::uint32_t> out;
  for_each_overlap(query, [&out](std::uint32_t id) { out.push_back(id); });
  return out;
}

}  // namespace aero
