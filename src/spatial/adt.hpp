#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// A point in the 4-dimensional space of segment extent boxes:
/// (xmin, ymin, xmax, ymax).
using Point4 = std::array<double, 4>;

/// Map a 2D extent box to its 4D point representation.
inline Point4 to_point4(const BBox2& b) {
  return {b.lo.x, b.lo.y, b.hi.x, b.hi.y};
}

/// The 4D query range whose member points are exactly the extent boxes that
/// intersect `q`: a box (x0,y0,x1,y1) overlaps q iff
///   x0 <= q.hi.x, y0 <= q.hi.y, x1 >= q.lo.x, y1 >= q.lo.y.
struct Range4 {
  Point4 lo;
  Point4 hi;

  bool contains(const Point4& p) const {
    for (int k = 0; k < 4; ++k) {
      if (p[k] < lo[k] || p[k] > hi[k]) return false;
    }
    return true;
  }
};

/// Query range for "all stored extent boxes intersecting box q", bounded by
/// the world box the tree was constructed with.
Range4 overlap_range(const BBox2& q, const BBox2& world);

/// Alternating Digital Tree (Bonet & Peraire, 1991).
///
/// A binary tree over k-dimensional points (k = 4 here) where the
/// discriminating coordinate alternates with depth and each node bisects its
/// hyper-subregion at the midpoint. Inserting n segment extent boxes and then
/// querying each against the rest resolves all pairwise box overlaps in
/// O(n log n) expected time -- this is the pruning structure the paper uses
/// for both self-intersection and multi-element intersection checks on
/// boundary-layer rays.
class AlternatingDigitalTree {
 public:
  /// `world` must enclose every box that will be inserted; it defines the
  /// root subregion in all four dimensions.
  explicit AlternatingDigitalTree(const BBox2& world);

  /// Insert an extent box with a caller-chosen id (e.g. a ray index).
  void insert(const BBox2& box, std::uint32_t id);

  /// Ids of all stored boxes that intersect `query` (inclusive of touching).
  std::vector<std::uint32_t> query_overlaps(const BBox2& query) const;

  /// Visit ids of all stored boxes intersecting `query` without allocating.
  template <typename Fn>
  void for_each_overlap(const BBox2& query, Fn&& fn) const {
    if (nodes_.empty()) return;
    const Range4 range = overlap_range(query, world_);
    Point4 lo{world_.lo.x, world_.lo.y, world_.lo.x, world_.lo.y};
    Point4 hi{world_.hi.x, world_.hi.y, world_.hi.x, world_.hi.y};
    search(0, 0, lo, hi, range, fn);
  }

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// World box the tree was constructed with.
  const BBox2& world() const { return world_; }

 private:
  struct Node {
    Point4 point;
    std::uint32_t id;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  template <typename Fn>
  void search(std::int32_t node_index, int depth, Point4 lo, Point4 hi,
              const Range4& range, Fn&& fn) const {
    const Node& node = nodes_[static_cast<std::size_t>(node_index)];
    if (range.contains(node.point)) fn(node.id);

    const int k = depth % 4;
    const double mid = (lo[k] + hi[k]) / 2.0;
    // Left subregion: coordinate k in [lo, mid); right: [mid, hi].
    if (node.left >= 0 && range.lo[k] < mid) {
      Point4 child_hi = hi;
      child_hi[k] = mid;
      search(node.left, depth + 1, lo, child_hi, range, fn);
    }
    if (node.right >= 0 && range.hi[k] >= mid) {
      Point4 child_lo = lo;
      child_lo[k] = mid;
      search(node.right, depth + 1, child_lo, hi, range, fn);
    }
  }

  BBox2 world_;
  std::vector<Node> nodes_;
};

}  // namespace aero
