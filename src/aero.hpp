#pragma once

// Umbrella public header of the aeromesh library.
//
// External code (tests/, examples/, downstream users) should include this
// plus, when needed, the public module headers below — never the internal
// src/** headers directly (enforced by the aerolint `public-api` rule;
// white-box tests opt out per include line with
// `// aerolint: allow(public-api)`).
//
// Public surface re-exported here:
//   core/options.hpp         aero::Options, validate(), option_specs(),
//                            generate_mesh(Options)
//   core/mesh_generator.hpp  sequential pipeline entry points,
//                            MeshGenerationResult, pipeline stages
//   core/run_status.hpp      RunStatus
//
// Additional public headers that stay separate (they pull heavier deps):
//   core/merged_mesh.hpp       assembled mesh (MergedMesh) + stats
//   core/mesh_view.hpp         MeshView read facade + "AMSH" blob codec
//   io/mesh_io.hpp             mesh writers/readers
//   runtime/parallel_driver.hpp  parallel_generate_mesh
//   runtime/cluster_model.hpp    strong-scaling performance model
//   solver/panel.hpp, solver/fem.hpp  verification solvers
//   airfoil/naca.hpp, airfoil/geometry.hpp  input geometry builders
//   delaunay/triangulator.hpp    standalone (C)DT + refinement entry point
//   service/server.hpp           in-process meshing service (MeshServer)
//   service/wire.hpp             MeshRequest/MeshResponse + codec
//   service/client.hpp           unix-socket client for aeromeshd

#include "core/mesh_generator.hpp"
#include "core/options.hpp"
#include "core/run_status.hpp"
