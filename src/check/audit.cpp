#include "check/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "geom/bbox.hpp"
#include "geom/predicates.hpp"
#include "geom/segment.hpp"

namespace aero {

namespace {

std::string fmt_point(Vec2 p) {
  std::ostringstream os;
  os.precision(17);
  os << "(" << p.x << ", " << p.y << ")";
  return os.str();
}

/// Usable extent of a resolved ray: the truncation height capped by the
/// deepest layer the growth function can ever place. Rays never receive
/// points beyond this, so this is the segment the crossing audit tests.
double usable_extent(const Ray& r, const BoundaryLayerOptions& opts) {
  return std::min(r.max_height, opts.growth.height(opts.max_layers));
}

/// Proper-crossing scan of one closed polyline (exact predicate, bbox
/// prune). Endpoint and collinear contacts are legal -- consecutive border
/// segments share tips and fans pivot around one origin -- so only kProper
/// is a defect.
void audit_closed_polyline(const std::vector<Vec2>& poly, const char* what,
                           std::size_t element, AuditReport& report) {
  const std::size_t n = poly.size();
  if (n < 3) return;
  struct Seg {
    Segment s;
    BBox2 box;
    std::size_t i;
  };
  std::vector<Seg> segs;
  segs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % n];
    if (a == b) continue;  // dedupe tolerance at the closing wrap
    segs.push_back(Seg{Segment{a, b}, BBox2::of_segment(a, b), i});
  }
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      if (!segs[i].box.intersects(segs[j].box)) continue;
      const IntersectResult r = intersect(segs[i].s, segs[j].s);
      if (r.kind == IntersectKind::kProper) {
        std::ostringstream os;
        os << what << " of element " << element << " self-intersects: segment "
           << segs[i].i << " crosses segment " << segs[j].i << " at "
           << fmt_point(r.point);
        report.fail(os.str());
      }
    }
  }
}

}  // namespace

void AuditReport::fail(std::string issue) {
  ++defect_count;
  if (issues.size() < kMaxIssues) issues.push_back(std::move(issue));
}

void AuditReport::merge(const AuditReport& other) {
  defect_count += other.defect_count;
  checked += other.checked;
  for (const std::string& s : other.issues) {
    if (issues.size() >= kMaxIssues) break;
    issues.push_back(s);
  }
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "ok (" << checked << " entities)";
    return os.str();
  }
  os << defect_count << " defect(s) over " << checked << " entities";
  for (const std::string& s : issues) os << "\n  - " << s;
  if (defect_count > issues.size()) {
    os << "\n  ... " << (defect_count - issues.size()) << " more";
  }
  return os.str();
}

AuditReport audit_quadedge(const QuadEdge& q) {
  using EdgeRef = QuadEdge::EdgeRef;
  AuditReport report;
  const EdgeRef cap = static_cast<EdgeRef>(q.capacity());

  // Pass 1: local pointer sanity. Everything else assumes these hold for the
  // quarters it walks, so remember which quarters are locally sound.
  std::vector<std::uint8_t> sound(cap, 0);
  for (EdgeRef e = 0; e < cap; ++e) {
    if (q.dead(e)) continue;
    ++report.checked;
    const EdgeRef nxt = q.onext(e);
    if (nxt >= cap) {
      std::ostringstream os;
      os << "quarter " << e << ": Onext " << nxt << " out of range (capacity "
         << cap << ")";
      report.fail(os.str());
      continue;
    }
    if (q.dead(nxt)) {
      std::ostringstream os;
      os << "quarter " << e << ": Onext " << nxt << " is a dead edge";
      report.fail(os.str());
      continue;
    }
    if ((nxt & 1u) != (e & 1u)) {
      std::ostringstream os;
      os << "quarter " << e << ": Onext " << nxt
         << " crosses the primal/dual parity";
      report.fail(os.str());
      continue;
    }
    sound[e] = 1;
  }

  // Pass 2: Onext/Oprev must be inverse permutations (the Guibas-Stolfi
  // dual-linkage invariant; a splice applied to only one side breaks it).
  for (EdgeRef e = 0; e < cap; ++e) {
    if (!sound[e]) continue;
    const EdgeRef back = q.oprev(q.onext(e));
    if (back != e) {
      std::ostringstream os;
      os << "quarter " << e << ": Oprev(Onext(e)) = " << back
         << ", dual linkage broken";
      report.fail(os.str());
    }
  }

  // Pass 3: every Onext ring closes, and the primal quarters of one ring all
  // report the same origin vertex. Rings are walked once each via a visited
  // mark; a walk is abandoned (and reported) if it fails to return within
  // `cap` steps, which is the longest any true cycle can be.
  std::vector<std::uint8_t> visited(cap, 0);
  for (EdgeRef e = 0; e < cap; ++e) {
    if (!sound[e] || visited[e]) continue;
    const VertIndex origin = (e & 1u) == 0 ? q.org(e) : 0;
    EdgeRef cur = e;
    EdgeRef steps = 0;
    bool closed = false;
    while (steps <= cap) {
      visited[cur] = 1;
      if ((e & 1u) == 0 && q.org(cur) != origin) {
        std::ostringstream os;
        os << "quarter " << cur << ": origin " << q.org(cur)
           << " disagrees with ring origin " << origin << " (ring of quarter "
           << e << ")";
        report.fail(os.str());
      }
      const EdgeRef nxt = q.onext(cur);
      if (!sound[nxt]) break;  // already reported by pass 1
      if (nxt == e) {
        closed = true;
        break;
      }
      cur = nxt;
      ++steps;
    }
    if (!closed && sound[q.onext(cur)]) {
      std::ostringstream os;
      os << "Onext ring of quarter " << e << " does not close (walked " << steps
         << " steps)";
      report.fail(os.str());
    }
  }
  return report;
}

AuditReport audit_delaunay(
    const DelaunayMesh& m,
    const std::vector<std::pair<VertIndex, VertIndex>>& required_segments) {
  AuditReport report;
  const auto tri_count = static_cast<TriIndex>(m.triangle_slots());

  for (TriIndex t = 0; t < tri_count; ++t) {
    const MeshTri mt = m.tri(t);
    if (mt.dead) continue;
    ++report.checked;

    if (!mt.is_ghost()) {
      if (orient2d(m.point(mt.v[0]), m.point(mt.v[1]), m.point(mt.v[2])) <=
          0.0) {
        std::ostringstream os;
        os << "triangle " << t << " (" << mt.v[0] << ", " << mt.v[1] << ", "
           << mt.v[2] << ") is not strictly CCW";
        report.fail(os.str());
      }
    } else if (mt.v[0] == kGhost || mt.v[1] == kGhost) {
      std::ostringstream os;
      os << "ghost triangle " << t << " carries kGhost outside slot 2";
      report.fail(os.str());
      continue;  // slot arithmetic below would index with kGhost
    }

    for (int i = 0; i < 3; ++i) {
      const TriIndex nb = mt.n[i];
      if (nb == kNoTri || nb < 0 || nb >= tri_count) {
        std::ostringstream os;
        os << "triangle " << t << " edge " << i
           << ": missing/out-of-range neighbor " << nb
           << " (the structure must be a closed sphere)";
        report.fail(os.str());
        continue;
      }
      const MeshTri mn = m.tri(nb);
      if (mn.dead) {
        std::ostringstream os;
        os << "triangle " << t << " edge " << i << ": neighbor " << nb
           << " is dead";
        report.fail(os.str());
        continue;
      }
      int back = -1;
      for (int j = 0; j < 3; ++j) {
        if (mn.n[j] == t) back = j;
      }
      if (back < 0) {
        std::ostringstream os;
        os << "triangle " << t << " edge " << i << ": neighbor " << nb
           << " does not point back (adjacency not mutual)";
        report.fail(os.str());
        continue;
      }
      const VertIndex a = mt.v[(i + 1) % 3];
      const VertIndex b = mt.v[(i + 2) % 3];
      const VertIndex c = mn.v[(back + 1) % 3];
      const VertIndex d = mn.v[(back + 2) % 3];
      if (!(a == d && b == c)) {
        std::ostringstream os;
        os << "triangle " << t << " edge " << i << " and triangle " << nb
           << " edge " << back << " disagree on the shared edge: (" << a << ", "
           << b << ") vs (" << c << ", " << d << ")";
        report.fail(os.str());
      }
      if (mt.constrained[i] != mn.constrained[back]) {
        std::ostringstream os;
        os << "triangle " << t << " edge " << i << " and triangle " << nb
           << " edge " << back << " disagree on the constraint mark";
        report.fail(os.str());
      }

      // Empty circumcircle across unconstrained finite-finite edges; checked
      // from the lower triangle id so each edge is tested once.
      if (!mt.is_ghost() && !mn.is_ghost() && !mt.constrained[i] && t < nb &&
          back >= 0 && a == d && b == c) {
        const VertIndex apex = mn.v[back];
        if (incircle(m.point(mt.v[0]), m.point(mt.v[1]), m.point(mt.v[2]),
                     m.point(apex)) > 0.0) {
          std::ostringstream os;
          os << "edge (" << a << ", " << b << ") between triangles " << t
             << " and " << nb << " is not locally Delaunay (apex " << apex
             << " lies inside the circumcircle)";
          report.fail(os.str());
        }
      }
    }
  }

  for (const auto& [u, w] : required_segments) {
    const auto [t, e] = m.find_edge(u, w);
    if (t == kNoTri) {
      std::ostringstream os;
      os << "required segment (" << u << ", " << w
         << ") is not an edge of the triangulation";
      report.fail(os.str());
    } else if (!m.tri(t).constrained[static_cast<std::size_t>(e)]) {
      std::ostringstream os;
      os << "required segment (" << u << ", " << w
         << ") is present but not marked constrained";
      report.fail(os.str());
    }
  }
  return report;
}

AuditReport audit_rays(const ElementRays& er,
                       const BoundaryLayerOptions& opts) {
  AuditReport report;
  report.checked = er.rays.size();

  // Surface lookup: every ray origin must be a vertex of the refined surface
  // polyline (the large-angle rule inserts interpolated origins into it).
  std::unordered_map<Vec2, std::size_t, Vec2Hash> surface_index;
  for (std::size_t i = 0; i < er.surface.size(); ++i) {
    surface_index.emplace(er.surface[i], i);
  }

  // Per-ray local checks plus the run structure: rays sharing an origin must
  // be contiguous (a fan pivots around one vertex), and a multi-ray run is a
  // fan by definition.
  std::unordered_set<Vec2, Vec2Hash> finished_runs;
  std::vector<std::size_t> run_surface_order;
  for (std::size_t i = 0; i < er.rays.size(); ++i) {
    const Ray& r = er.rays[i];
    if (!std::isfinite(r.origin.x) || !std::isfinite(r.origin.y)) {
      std::ostringstream os;
      os << "ray " << i << ": non-finite origin " << fmt_point(r.origin);
      report.fail(os.str());
      continue;
    }
    if (std::abs(r.dir.norm2() - 1.0) > 1e-9) {
      std::ostringstream os;
      os << "ray " << i << ": direction " << fmt_point(r.dir)
         << " is not unit length";
      report.fail(os.str());
    }
    if (!(r.max_height > 0.0)) {
      std::ostringstream os;
      os << "ray " << i << ": non-positive truncation height " << r.max_height;
      report.fail(os.str());
    }

    const bool starts_run = i == 0 || !(er.rays[i - 1].origin == r.origin);
    if (starts_run) {
      if (i > 0) finished_runs.insert(er.rays[i - 1].origin);
      if (finished_runs.count(r.origin) != 0) {
        std::ostringstream os;
        os << "ray " << i << ": origin " << fmt_point(r.origin)
           << " reappears after its run ended (fans must be contiguous)";
        report.fail(os.str());
      }
      const auto it = surface_index.find(r.origin);
      if (it == surface_index.end()) {
        std::ostringstream os;
        os << "ray " << i << ": origin " << fmt_point(r.origin)
           << " is not a vertex of the refined surface";
        report.fail(os.str());
      } else {
        run_surface_order.push_back(it->second);
      }
    } else {
      if (r.fan != er.rays[i - 1].fan) {
        std::ostringstream os;
        os << "ray " << i << ": fan flag differs from ray " << (i - 1)
           << " of the same origin run";
        report.fail(os.str());
      }
      if (!r.fan) {
        std::ostringstream os;
        os << "rays " << (i - 1) << " and " << i << " share origin "
           << fmt_point(r.origin) << " but are not marked as a fan";
        report.fail(os.str());
      }
    }
  }

  // The run origins must traverse the (cyclic) surface in order: strictly
  // increasing surface indices with at most one wrap-around descent.
  std::size_t descents = 0;
  for (std::size_t i = 0; i + 1 < run_surface_order.size(); ++i) {
    if (run_surface_order[i + 1] <= run_surface_order[i]) ++descents;
  }
  if (descents > 1) {
    std::ostringstream os;
    os << "ray origins leave surface order " << descents
       << " times (expected a single cyclic rotation)";
    report.fail(os.str());
  }

  // No two truncated rays' usable extents may properly cross: intersection
  // resolution truncates at `truncation_margin` (< 1/2) of the distance to
  // the crossing, so after resolution the extents provably clear each other.
  // Untruncated rays were never party to a crossing and are skipped.
  struct Extent {
    Segment s;
    BBox2 box;
    std::size_t i;
  };
  std::vector<Extent> extents;
  for (std::size_t i = 0; i < er.rays.size(); ++i) {
    const Ray& r = er.rays[i];
    if (!std::isfinite(r.max_height)) continue;
    const double h = usable_extent(r, opts);
    if (!(h > 0.0)) continue;
    const Vec2 tip = r.origin + r.dir * h;
    extents.push_back(
        Extent{Segment{r.origin, tip}, BBox2::of_segment(r.origin, tip), i});
  }
  for (std::size_t a = 0; a < extents.size(); ++a) {
    for (std::size_t b = a + 1; b < extents.size(); ++b) {
      if (!extents[a].box.intersects(extents[b].box)) continue;
      const IntersectResult res = intersect(extents[a].s, extents[b].s);
      if (res.kind == IntersectKind::kProper) {
        std::ostringstream os;
        os << "truncated rays " << extents[a].i << " and " << extents[b].i
           << " still cross at " << fmt_point(res.point)
           << " within their usable extents";
        report.fail(os.str());
      }
    }
  }
  return report;
}

AuditReport audit_blayer(const BoundaryLayer& bl) {
  AuditReport report;
  const std::size_t elements = bl.surfaces.size();
  report.checked = elements + bl.layers_per_ray.size();

  if (bl.outer_borders.size() != elements || bl.hole_seeds.size() != elements) {
    std::ostringstream os;
    os << "per-element arrays disagree: " << elements << " surfaces, "
       << bl.outer_borders.size() << " outer borders, " << bl.hole_seeds.size()
       << " hole seeds";
    report.fail(os.str());
  }

  for (std::size_t i = 0; i < bl.layers_per_ray.size(); ++i) {
    if (bl.layers_per_ray[i] < 0) {
      std::ostringstream os;
      os << "ray " << i << ": negative layer count " << bl.layers_per_ray[i];
      report.fail(os.str());
    }
  }

  // Each outer-border vertex is the tip of one ray (consecutive duplicate
  // tips are deduplicated), so the borders can never hold more points than
  // there are rays.
  std::size_t border_points = 0;
  for (const std::vector<Vec2>& border : bl.outer_borders) {
    border_points += border.size();
  }
  if (border_points > bl.layers_per_ray.size()) {
    std::ostringstream os;
    os << "outer borders hold " << border_points << " points but only "
       << bl.layers_per_ray.size() << " rays exist";
    report.fail(os.str());
  }

  // Conformity contract: surfaces and border tips are bit-identical reuses
  // of inserted points, which is what lets the merged mesh weld by exact
  // coordinate identity. A vertex missing from the cloud breaks the weld.
  std::unordered_set<Vec2, Vec2Hash> cloud(bl.points.begin(), bl.points.end());
  for (std::size_t e = 0; e < bl.surfaces.size(); ++e) {
    for (const Vec2& p : bl.surfaces[e]) {
      if (cloud.count(p) == 0) {
        std::ostringstream os;
        os << "surface vertex " << fmt_point(p) << " of element " << e
           << " is missing from the point cloud";
        report.fail(os.str());
      }
    }
  }
  for (std::size_t e = 0; e < bl.outer_borders.size(); ++e) {
    for (const Vec2& p : bl.outer_borders[e]) {
      if (cloud.count(p) == 0) {
        std::ostringstream os;
        os << "outer-border vertex " << fmt_point(p) << " of element " << e
           << " is missing from the point cloud";
        report.fail(os.str());
      }
    }
  }

  for (std::size_t e = 0; e < bl.surfaces.size(); ++e) {
    audit_closed_polyline(bl.surfaces[e], "surface", e, report);
  }
  for (std::size_t e = 0; e < bl.outer_borders.size(); ++e) {
    audit_closed_polyline(bl.outer_borders[e], "outer border", e, report);
  }
  return report;
}

AuditReport audit_merged(const MergedMesh& mesh) {
  AuditReport report;
  const std::size_t np = mesh.point_count();

  std::unordered_set<Vec2, Vec2Hash> seen;
  seen.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    if (!seen.insert(mesh.point(i)).second) {
      std::ostringstream os;
      os << "point " << i << " " << fmt_point(mesh.point(i))
         << " duplicates an earlier interned point";
      report.fail(os.str());
    }
  }

  struct EdgeUse {
    std::size_t count = 0;          ///< live triangles on this edge
    std::size_t forward_count = 0;  ///< traversals in (lo, hi) direction
  };
  std::unordered_map<std::uint64_t, EdgeUse> edges;
  for (std::size_t t = 0; t < mesh.record_count(); ++t) {
    if (!mesh.alive(t)) continue;
    ++report.checked;
    const std::array<std::uint32_t, 3>& tri = mesh.tri(t);

    bool degenerate = false;
    for (int i = 0; i < 3; ++i) {
      if (tri[i] >= np) {
        std::ostringstream os;
        os << "triangle " << t << ": vertex index " << tri[i]
           << " out of range (" << np << " points)";
        report.fail(os.str());
        degenerate = true;
      }
    }
    if (!degenerate &&
        (tri[0] == tri[1] || tri[1] == tri[2] || tri[2] == tri[0])) {
      std::ostringstream os;
      os << "triangle " << t << " (" << tri[0] << ", " << tri[1] << ", "
         << tri[2] << ") repeats a vertex";
      report.fail(os.str());
      degenerate = true;
    }
    if (degenerate) continue;

    if (orient2d(mesh.point(tri[0]), mesh.point(tri[1]), mesh.point(tri[2])) <=
        0.0) {
      std::ostringstream os;
      os << "triangle " << t << " (" << tri[0] << ", " << tri[1] << ", "
         << tri[2] << ") is not strictly CCW";
      report.fail(os.str());
    }
    for (int i = 0; i < 3; ++i) {
      const std::uint32_t a = tri[i];
      const std::uint32_t b = tri[(i + 1) % 3];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
      EdgeUse& use = edges[key];
      ++use.count;
      if (a < b) ++use.forward_count;
    }
  }

  for (const auto& [key, use] : edges) {
    const auto a = static_cast<std::uint32_t>(key >> 32);
    const auto b = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (use.count > 2) {
      std::ostringstream os;
      os << "edge (" << a << ", " << b << ") borders " << use.count
         << " live triangles (non-manifold)";
      report.fail(os.str());
    } else if (use.count == 2 && use.forward_count != 1) {
      std::ostringstream os;
      os << "edge (" << a << ", " << b
         << ") is traversed twice in the same direction (inconsistent "
            "orientation)";
      report.fail(os.str());
    }
  }
  return report;
}

AuditReport audit_protocol(const ProtocolTrace& trace, bool run_aborted) {
  AuditReport report;
  const std::vector<ProtocolEvent> events = trace.snapshot();
  report.checked = events.size();
  using Kind = ProtocolEvent::Kind;

  struct NonceState {
    std::size_t dispatched = 0;
    std::size_t accepted = 0;
    std::size_t resolved = 0;   ///< ack-matched + recovered + abandoned
    std::size_t published = 0;  ///< payload registered in an RMA window
    std::size_t taken = 0;      ///< payload consumed by ownership handoff
  };
  struct UnitState {
    std::size_t created = 0;
    std::size_t finished = 0;  ///< completed + lost
    bool fallback = false;
  };
  // Unit ids and nonces restart with every pool run (a pipeline runs two
  // pools over one trace), so all state is keyed by (run, id).
  using Key = std::pair<std::uint32_t, std::uint64_t>;
  std::map<Key, NonceState> nonces;
  std::map<Key, UnitState> units;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const ProtocolEvent& ev = events[i];
    switch (ev.kind) {
      case Kind::kDispatch: {
        NonceState& ns = nonces[{ev.run, ev.id}];
        if (ns.dispatched > 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " dispatched twice (nonces must be fresh per transfer)";
          report.fail(os.str());
        }
        ++ns.dispatched;
        break;
      }
      case Kind::kAccept: {
        NonceState& ns = nonces[{ev.run, ev.id}];
        if (ns.dispatched == 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " accepted without a prior dispatch";
          report.fail(os.str());
        }
        if (ns.accepted > 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " accepted twice (receiver dedupe failed)";
          report.fail(os.str());
        }
        ++ns.accepted;
        break;
      }
      case Kind::kDuplicate: {
        if (nonces[{ev.run, ev.id}].accepted == 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " flagged duplicate before any accept";
          report.fail(os.str());
        }
        break;
      }
      case Kind::kAckMatched:
      case Kind::kRecovered:
      case Kind::kAbandoned: {
        NonceState& ns = nonces[{ev.run, ev.id}];
        if (ns.dispatched == 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " resolved without a prior dispatch";
          report.fail(os.str());
        }
        if (ev.kind == Kind::kAckMatched && ns.accepted == 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " ack-matched but the frame was never accepted";
          report.fail(os.str());
        }
        if (ns.resolved > 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " resolved twice (in-flight entry handled more than once)";
          report.fail(os.str());
        }
        ++ns.resolved;
        break;
      }
      case Kind::kWindowPublished: {
        NonceState& ns = nonces[{ev.run, ev.id}];
        if (ns.published > 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " published twice (one window slot per dispatch)";
          report.fail(os.str());
        }
        ++ns.published;
        break;
      }
      case Kind::kWindowTaken: {
        NonceState& ns = nonces[{ev.run, ev.id}];
        if (ns.published == 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " taken from a window but never published";
          report.fail(os.str());
        }
        if (ns.taken > 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " taken twice (zero-copy handoff must be exactly-once)";
          report.fail(os.str());
        }
        if (ns.accepted > 0) {
          std::ostringstream os;
          os << "event " << i << ": nonce " << ev.id
             << " taken after it was already accepted (a duplicate control"
                " frame must be answered from the dedupe, not the window)";
          report.fail(os.str());
        }
        ++ns.taken;
        break;
      }
      case Kind::kUnitCreated: {
        UnitState& us = units[{ev.run, ev.id}];
        if (us.created > 0) {
          std::ostringstream os;
          os << "event " << i << ": unit " << ev.id << " created twice";
          report.fail(os.str());
        }
        ++us.created;
        break;
      }
      case Kind::kUnitCompleted:
      case Kind::kUnitLost: {
        UnitState& us = units[{ev.run, ev.id}];
        if (us.created == 0) {
          std::ostringstream os;
          os << "event " << i << ": unit " << ev.id
             << " finished but was never created";
          report.fail(os.str());
        }
        if (us.finished > 0) {
          std::ostringstream os;
          os << "event " << i << ": unit " << ev.id
             << " finished twice (exactly-once completion violated)";
          report.fail(os.str());
        }
        ++us.finished;
        break;
      }
      case Kind::kUnitRequeued:
      case Kind::kUnitReclaimed:
      case Kind::kUnitFallback: {
        UnitState& us = units[{ev.run, ev.id}];
        if (us.created == 0) {
          std::ostringstream os;
          os << "event " << i << ": unit " << ev.id
             << " moved but was never created";
          report.fail(os.str());
        }
        if (us.finished > 0) {
          std::ostringstream os;
          os << "event " << i << ": unit " << ev.id
             << " re-queued/reclaimed after it already finished";
          report.fail(os.str());
        }
        if (ev.kind == Kind::kUnitFallback) us.fallback = true;
        break;
      }
    }
  }

  // Completeness: only meaningful for runs that ran to completion. A
  // watchdog-aborted run legitimately leaves nonces unresolved and units
  // unfinished; the exactly-once and ordering checks above still apply.
  if (!run_aborted) {
    for (const auto& [key, ns] : nonces) {
      if (ns.dispatched > 0 && ns.resolved == 0) {
        std::ostringstream os;
        os << "nonce " << key.second << " (run " << key.first << ")"
           << " was dispatched but never resolved (ack, recovery, or "
              "shutdown abandonment)";
        report.fail(os.str());
      }
    }
    for (const auto& [key, us] : units) {
      if (us.created > 0 && us.finished == 0) {
        std::ostringstream os;
        os << "unit " << key.second << " (run " << key.first
           << ") was created but never completed or lost";
        report.fail(os.str());
      }
    }
  }
  return report;
}

}  // namespace aero
