#pragma once

#include <cstdint>
#include <vector>

#include "obs/annotations.hpp"

namespace aero {

/// One recorded event of the pool's work-distribution protocol. Plain data:
/// `id` is a unit id for the kUnit* kinds and a transfer nonce for the
/// transfer kinds; `rank`/`peer` identify the recording rank and the other
/// endpoint where meaningful (-1 otherwise).
struct ProtocolEvent {
  /// Pool run the event belongs to (run_pool calls begin_run() on entry).
  /// Unit ids and transfer nonces restart per run, so the auditor scopes
  /// every exactly-once check to (run, id).
  std::uint32_t run = 0;
  enum class Kind : std::uint8_t {
    kUnitCreated,    ///< a unit id was assigned (initial or spawned child)
    kUnitCompleted,  ///< unit expanded successfully (pool or root fallback)
    kUnitRequeued,   ///< unit exhausted local retries, shipped to another rank
    kUnitReclaimed,  ///< queued unit rescued off a dead rank by the watchdog
    kUnitFallback,   ///< unit escalated to the root-side sequential fallback
    kUnitLost,       ///< unit threw even in the fallback (genuinely unmeshable)
    kDispatch,       ///< transfer frame sent under a fresh nonce
    kAccept,         ///< frame accepted by the receiver (first copy)
    kDuplicate,      ///< frame copy dropped by the receiver's nonce dedupe
    kAckMatched,     ///< ack erased the matching in-flight entry
    kRecovered,      ///< in-flight entry recovered because its dest died
    kAbandoned,      ///< in-flight entry discarded at shutdown (ack loss on
                     ///< completed work; see pool.cpp shutdown phase)
    kWindowPublished,///< payload registered in the sender's RMA window
    kWindowTaken,    ///< payload consumed by ownership handoff (exactly once)
  };
  Kind kind = Kind::kUnitCreated;
  std::uint64_t id = 0;
  int rank = -1;
  int peer = -1;
};

/// Thread-safe append-only recorder the pool fills when a trace is attached
/// (PoolOptions::trace). The single mutex makes the event sequence a total
/// order, which is what lets audit_protocol() check ordering invariants
/// ("no unit re-queued after completion") and not just counts.
///
/// This lives in src/check (not src/runtime) so the auditor can replay a
/// trace without depending on the runtime; the runtime depends on the
/// checker, never the reverse.
class ProtocolTrace {
 public:
  /// Mark the start of a pool run; subsequent events belong to it. Unit ids
  /// and nonces are only unique within one run.
  void begin_run() {
    MutexLock lock(m_);
    ++run_;
  }

  void record(ProtocolEvent::Kind kind, std::uint64_t id, int rank = -1,
              int peer = -1) {
    MutexLock lock(m_);
    events_.push_back(ProtocolEvent{run_, kind, id, rank, peer});
  }

  std::vector<ProtocolEvent> snapshot() const {
    MutexLock lock(m_);
    return events_;
  }

  std::size_t size() const {
    MutexLock lock(m_);
    return events_.size();
  }

 private:
  mutable Mutex m_;
  std::uint32_t run_ AERO_GUARDED_BY(m_) = 0;
  std::vector<ProtocolEvent> events_ AERO_GUARDED_BY(m_);
};

}  // namespace aero
