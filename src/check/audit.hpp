#pragma once

// Deep structural auditors for the mesh and protocol invariants the type
// system cannot express. Each audit walks one data structure and reports
// every violated invariant with enough context to locate the defect -- the
// point is to catch corruption where it happens instead of thousands of
// Bowyer-Watson steps later, when the symptom (a non-manifold merge, a hung
// gather) is far from the cause.
//
// All geometric decisions route through the exact adaptive predicates, so an
// audit never disagrees with the mesher about orientation or circumcircles.
// Audits are read-only and side-effect free: a pipeline run with --audit
// produces a mesh bit-identical to a run without.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "blayer/boundary_layer.hpp"
#include "check/protocol_trace.hpp"
#include "core/merged_mesh.hpp"
#include "delaunay/mesh.hpp"
#include "delaunay/quadedge.hpp"

namespace aero {

/// Outcome of one audit: a (bounded) list of human-readable defects.
struct AuditReport {
  /// Individual defects, most precise location first. Bounded at
  /// `kMaxIssues` so a systematically corrupt structure reports a sample,
  /// not a gigabyte.
  std::vector<std::string> issues;
  /// Violations found, including ones dropped by the issue cap.
  std::size_t defect_count = 0;
  /// Entities examined (edges, triangles, rays, events -- audit-specific).
  std::size_t checked = 0;

  static constexpr std::size_t kMaxIssues = 32;

  bool ok() const { return defect_count == 0; }
  /// "ok (N entities)" or "M defects (N entities): first issue; ..."
  std::string summary() const;
  /// Record one defect (respects the cap).
  void fail(std::string issue);
  /// Merge another report into this one (issue cap re-applied).
  void merge(const AuditReport& other);
};

/// Audit a quad-edge structure: every live quarter-edge's Onext pointer must
/// land on a live quarter of the same duality (primal/dual), oprev must
/// invert onext (the Guibas-Stolfi dual-linkage invariant), every Onext ring
/// must close, and all primal quarters of one origin ring must agree on
/// their origin vertex.
AuditReport audit_quadedge(const QuadEdge& q);

/// Audit a Delaunay mesh: mutual adjacency with matching shared edges and
/// constraint marks, exact CCW orientation of finite triangles, ghost
/// vertices confined to slot 2, the empty-circumcircle property across every
/// unconstrained finite-finite edge (exact incircle), and -- when
/// `required_segments` is given -- presence of each segment as a constrained
/// edge (the constrained-Delaunay contract).
AuditReport audit_delaunay(
    const DelaunayMesh& m,
    const std::vector<std::pair<VertIndex, VertIndex>>& required_segments = {});

/// Audit one element's resolved ray set: unit directions, positive
/// truncation heights, fan rays contiguous per origin, non-fan origins in
/// surface order, and no two truncated rays' usable extents properly
/// crossing (exact segment predicate; untruncated rays were never near an
/// intersection and are skipped).
AuditReport audit_rays(const ElementRays& er, const BoundaryLayerOptions& opts);

/// Audit an assembled boundary layer: per-element outer border and surface
/// sizes consistent with the per-ray layer counts, no negative layer counts,
/// no self-intersecting surface or outer-border polyline (exact segment
/// predicate), and every surface/border vertex present in the point cloud.
AuditReport audit_blayer(const BoundaryLayer& bl);

/// Audit a merged mesh: no duplicate interned points, no degenerate
/// triangle records, exact CCW orientation of every live triangle, and
/// manifoldness (no edge with more than two live triangles).
AuditReport audit_merged(const MergedMesh& mesh);

/// Audit a pool protocol trace. Exactly-once invariants: every dispatched
/// nonce is resolved exactly once (ack-matched, dead-destination recovery,
/// or shutdown abandonment), every accepted nonce was dispatched and is
/// accepted at most once globally, every duplicate had a prior accept. Unit
/// lifecycle: every created unit finishes exactly once (completed or lost),
/// is never re-queued after completing, and a fallback escalation is
/// followed by its root-side completion. With `run_aborted` (watchdog fired)
/// the completeness checks are skipped and only the exactly-once /
/// ordering invariants remain.
AuditReport audit_protocol(const ProtocolTrace& trace, bool run_aborted = false);

}  // namespace aero
