#include "blayer/boundary_layer.hpp"

#include <cmath>

#include "geom/segment.hpp"
#include "obs/trace.hpp"

namespace aero {

BoundaryLayer build_boundary_layer(const AirfoilConfig& config,
                                   const BoundaryLayerOptions& opts) {
  AERO_TRACE_SPAN("blayer", "build_boundary_layer");
  BoundaryLayer bl;

  std::vector<ElementRays> elements;
  elements.reserve(config.elements.size());
  {
    AERO_TRACE_SPAN("blayer", "build_rays");
    for (std::uint32_t e = 0; e < config.elements.size(); ++e) {
      elements.push_back(build_rays(config.elements[e], opts, e, &bl.stats));
      bl.hole_seeds.push_back(config.elements[e].interior_point());
    }
  }

  {
    AERO_TRACE_SPAN("blayer", "resolve_self_intersections");
    for (auto& er : elements) {
      resolve_self_intersections(er, opts, &bl.stats);
    }
  }
  {
    AERO_TRACE_SPAN("blayer", "resolve_multi_element_intersections");
    resolve_multi_element_intersections(elements, opts, &bl.stats);
  }

  AERO_TRACE_SPAN("blayer", "assemble_cloud");
  for (const auto& er : elements) {
    bl.surfaces.push_back(er.surface);

    const std::size_t nr = er.rays.size();
    std::vector<Vec2> border;
    border.reserve(nr);
    for (std::size_t i = 0; i < nr; ++i) {
      const Ray& r = er.rays[i];
      const Ray& prev = er.rays[(i + nr - 1) % nr];
      const Ray& next = er.rays[(i + 1) % nr];
      // Lateral spacing: mean distance to the neighboring ray origins; for
      // fan rays (shared origin) the divergence term h * angle dominates.
      const double s0 = 0.5 * (distance(r.origin, prev.origin) +
                               distance(r.origin, next.origin));
      const double spread =
          0.5 * (std::fabs(signed_angle(prev.dir, r.dir)) +
                 std::fabs(signed_angle(r.dir, next.dir)));
      const int layers = layer_count(r, s0, spread, opts);
      bl.layers_per_ray.push_back(layers);

      for (int k = 1; k <= layers; ++k) {
        bl.points.push_back(r.origin + r.dir * opts.growth.height(k));
      }
      // A few ring seeds per element: half a first-layer height above the
      // surface is strictly inside the ring wherever a layer exists.
      if (layers > 0 && i % std::max<std::size_t>(1, nr / 24) == 0) {
        bl.ring_seeds.push_back(r.origin +
                                r.dir * (0.5 * opts.growth.height(1)));
      }
      const Vec2 tip = ray_tip(r, layers, opts.growth);
      if (border.empty() || border.back() != tip) border.push_back(tip);
    }
    bl.outer_borders.push_back(std::move(border));

    // Surface points are part of the cloud exactly once.
    bl.points.insert(bl.points.end(), er.surface.begin(), er.surface.end());
  }
  return bl;
}

}  // namespace aero
