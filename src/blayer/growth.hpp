#pragma once

#include <cmath>
#include <stdexcept>

namespace aero {

/// Family of growth functions for boundary-layer point spacing along a ray
/// (Garimella & Shephard 2000). All are parameterized by the first layer
/// height h0; `spacing(k)` is the gap between layer k-1 and layer k
/// (1-based), `height(k)` the cumulative offset of layer k from the surface.
enum class GrowthKind {
  kGeometric,   ///< spacing h0 * r^(k-1)
  kPolynomial,  ///< spacing h0 * k^p
  kAdaptive,    ///< geometric with a smoothly ramped ratio (gentler start)
};

struct GrowthFunction {
  GrowthKind kind = GrowthKind::kGeometric;
  double first_height = 1e-3;  ///< h0
  double rate = 1.2;           ///< r for geometric/adaptive, p for polynomial

  double spacing(int layer) const {
    if (layer < 1) throw std::invalid_argument("layer must be >= 1");
    switch (kind) {
      case GrowthKind::kGeometric:
        return first_height * std::pow(rate, layer - 1);
      case GrowthKind::kPolynomial:
        return first_height * std::pow(static_cast<double>(layer), rate);
      case GrowthKind::kAdaptive: {
        // Ratio ramps from 1 to `rate` over the first ten layers: keeps the
        // wall-adjacent layers nearly uniform, then grows geometrically.
        double h = first_height;
        double s = first_height;
        for (int k = 2; k <= layer; ++k) {
          const double ramp = std::min(1.0, (k - 1) / 10.0);
          const double r = 1.0 + (rate - 1.0) * ramp;
          s *= r;
          h += 0.0;  // (height accumulated by caller)
        }
        (void)h;
        return s;
      }
    }
    return 0.0;
  }

  double height(int layer) const {
    if (layer == 0) return 0.0;
    if (kind == GrowthKind::kGeometric && rate != 1.0) {
      // Closed form for the geometric series.
      return first_height * (std::pow(rate, layer) - 1.0) / (rate - 1.0);
    }
    double h = 0.0;
    for (int k = 1; k <= layer; ++k) h += spacing(k);
    return h;
  }
};

}  // namespace aero
