#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "airfoil/geometry.hpp"
#include "blayer/growth.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// One extrusion ray of the advancing-front boundary layer: points are
/// inserted along `dir` from `origin` according to the growth function,
/// up to `max_height` (set by intersection resolution) and the isotropy
/// criterion.
struct Ray {
  Vec2 origin;
  Vec2 dir;  ///< unit direction (outward surface normal or fan direction)
  double max_height = std::numeric_limits<double>::infinity();
  std::uint32_t element = 0;  ///< owning element index
  bool fan = false;           ///< emitted by cusp/large-angle fan refinement
};

/// Options for boundary-layer generation.
struct BoundaryLayerOptions {
  GrowthFunction growth;
  /// Angle between neighboring rays above which interpolated rays are
  /// inserted along the surface edge (coarsely discretized curvature, e.g.
  /// the leading edge).
  double large_angle_deg = 20.0;
  /// Divergence of a vertex's own edge normals above which the vertex is a
  /// slope discontinuity and emits a fan of curved rays from a single origin
  /// (trailing-edge cusps, blunt-TE corners, any sharp convex kink).
  double cusp_angle_deg = 60.0;
  /// Terminate a ray when the next layer spacing reaches this multiple of
  /// the local lateral spacing (triangles become isotropic, Figure 5).
  double isotropy_factor = 1.0;
  int max_layers = 60;
  /// Fraction of the distance to an intersection that remains usable for
  /// point insertion after a ray is truncated.
  double truncation_margin = 0.45;
};

/// Ray set of one element, including the surface refinement (extra surface
/// vertices inserted by the large-angle rule become part of the PSLG).
struct ElementRays {
  std::vector<Ray> rays;      ///< in surface order (fans contiguous)
  std::vector<Vec2> surface;  ///< refined closed CCW surface polyline
};

/// Counters reported by intersection resolution (paper Section II.B).
struct IntersectionStats {
  std::size_t fans = 0;
  std::size_t fan_rays = 0;
  std::size_t edge_refinement_rays = 0;
  std::size_t self_pairs_tested = 0;
  std::size_t self_truncations = 0;
  std::size_t surface_truncations = 0;
  std::size_t multi_candidates = 0;
  std::size_t multi_pairs_tested = 0;
  std::size_t multi_truncations = 0;
};

/// Build the rays of one element: bisector normals, fans at vertices whose
/// edge normals diverge beyond the threshold (cusps and convex corners), and
/// interpolated rays along coarsely discretized curved edges.
ElementRays build_rays(const AirfoilElement& element,
                       const BoundaryLayerOptions& opts,
                       std::uint32_t element_id, IntersectionStats* stats);

/// Truncate rays of `er` that properly cross each other or the element's own
/// surface. Uses an alternating digital tree over segment extent boxes for
/// the O(n log n) candidate search the paper describes.
void resolve_self_intersections(ElementRays& er,
                                const BoundaryLayerOptions& opts,
                                IntersectionStats* stats);

/// Truncate rays of each element that would pierce another element's
/// boundary-layer outer border: AABB prune (Cohen-Sutherland) then ADT prune
/// then exact segment intersection.
void resolve_multi_element_intersections(std::vector<ElementRays>& elements,
                                         const BoundaryLayerOptions& opts,
                                         IntersectionStats* stats);

/// Number of layers to insert on `ray` given its neighbors' spacing (the
/// isotropy transition rule) and its truncation height.
int layer_count(const Ray& ray, double lateral_spacing, double angle_spread,
                const BoundaryLayerOptions& opts);

/// Final tip of a ray (origin if no layers fit).
Vec2 ray_tip(const Ray& ray, int layers, const GrowthFunction& growth);

}  // namespace aero
