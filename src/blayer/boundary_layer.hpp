#pragma once

#include <vector>

#include "blayer/rays.hpp"

namespace aero {

/// The generated anisotropic boundary layer: the full point cloud plus the
/// polylines needed downstream (surfaces for hole carving, outer borders for
/// diagnostics and the smooth-transition figure).
struct BoundaryLayer {
  /// Every boundary-layer point: surface vertices plus all inserted layer
  /// points. Input to the projection-based parallel triangulation.
  std::vector<Vec2> points;
  /// Refined surface polyline per element (closed CCW; constrained edges and
  /// carve barrier of the merged mesh).
  std::vector<std::vector<Vec2>> surfaces;
  /// Outer border polyline per element (consecutive ray tips; Figure 5's
  /// variable boundary-layer height is this series).
  std::vector<std::vector<Vec2>> outer_borders;
  /// One interior seed per element (hole carving).
  std::vector<Vec2> hole_seeds;
  /// Seeds strictly inside the boundary-layer ring (between surface and
  /// outer border), several per element: used to keep exactly the ring
  /// triangles of the assembled triangulation.
  std::vector<Vec2> ring_seeds;
  /// Layer count per ray, concatenated over elements in ray order.
  std::vector<int> layers_per_ray;
  IntersectionStats stats;
};

/// Full boundary-layer generation (paper Sections II.A-II.C): rays with fan
/// and curvature refinement, self- and multi-element intersection
/// resolution, then growth-function point insertion with the isotropy
/// transition rule.
BoundaryLayer build_boundary_layer(const AirfoilConfig& config,
                                   const BoundaryLayerOptions& opts);

}  // namespace aero
