#include "blayer/rays.hpp"

#include <algorithm>
#include <cmath>

#include "geom/segment.hpp"
#include "spatial/adt.hpp"

namespace aero {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Interpolate unit direction from d0 to d1 by fraction t (constant angular
/// velocity — the "linear interpolation between the two original normals").
Vec2 slerp_dir(Vec2 d0, Vec2 d1, double t) {
  const double total = signed_angle(d0, d1);
  return d0.rotated(total * t);
}

double cap_height(const Ray& r, const BoundaryLayerOptions& opts) {
  return std::min(r.max_height, opts.growth.height(opts.max_layers));
}

}  // namespace

ElementRays build_rays(const AirfoilElement& element,
                       const BoundaryLayerOptions& opts,
                       std::uint32_t element_id, IntersectionStats* stats) {
  const double threshold = opts.large_angle_deg * kPi / 180.0;
  const double cusp = opts.cusp_angle_deg * kPi / 180.0;
  const std::vector<Vec2>& s = element.surface;
  const std::size_t n = s.size();

  // Per-vertex pass: single bisector ray, or a fan where the edge normals
  // diverge beyond the threshold (sharp trailing-edge cusps, blunt
  // trailing-edge corners, any convex kink).
  struct VertexRays {
    std::vector<Vec2> dirs;
  };
  std::vector<VertexRays> per_vertex(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 prev = s[(i + n - 1) % n];
    const Vec2 cur = s[i];
    const Vec2 next = s[(i + 1) % n];
    const Vec2 d0 = (cur - prev).normalized();
    const Vec2 d1 = (next - cur).normalized();
    const Vec2 n0{d0.y, -d0.x};
    const Vec2 n1{d1.y, -d1.x};
    const double turn = signed_angle(n0, n1);
    if (turn > cusp) {
      // Diverging normals (convex kink): emit a fan anchored at the vertex.
      // The interpolated directions make the fan curve around the kink --
      // at a trailing edge this is the paper's fan curving into the wake.
      const int nrays =
          static_cast<int>(std::ceil(turn / threshold)) + 1;
      VertexRays vr;
      vr.dirs.reserve(static_cast<std::size_t>(nrays));
      for (int j = 0; j < nrays; ++j) {
        vr.dirs.push_back(
            slerp_dir(n0, n1, static_cast<double>(j) / (nrays - 1)));
      }
      per_vertex[i] = std::move(vr);
      if (stats) {
        ++stats->fans;
        stats->fan_rays += static_cast<std::size_t>(nrays);
      }
    } else {
      // Single ray along the (possibly converging) bisector normal.
      Vec2 bis = n0 + n1;
      if (bis.norm2() < 1e-24) bis = d0 - d1;  // 180-degree cusp fallback
      per_vertex[i].dirs.push_back(bis.normalized());
    }
  }

  // Per-edge pass: if the angle between the last ray of vertex i and the
  // first ray of vertex i+1 is still too large (coarse discretization of a
  // curved region, e.g. the leading edge), insert uniformly spaced surface
  // points along the edge with interpolated normals.
  ElementRays out;
  out.rays.reserve(n * 2);
  out.surface.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    out.surface.push_back(s[i]);
    for (const Vec2 d : per_vertex[i].dirs) {
      out.rays.push_back(Ray{s[i], d, std::numeric_limits<double>::infinity(),
                             element_id, per_vertex[i].dirs.size() > 1});
    }
    const Vec2 last_dir = per_vertex[i].dirs.back();
    const Vec2 next_dir = per_vertex[j].dirs.front();
    const double gap = std::fabs(signed_angle(last_dir, next_dir));
    if (gap > threshold) {
      const int extra = static_cast<int>(std::ceil(gap / threshold)) - 1;
      for (int k = 1; k <= extra; ++k) {
        const double t = static_cast<double>(k) / (extra + 1);
        const Vec2 origin = lerp(s[i], s[j], t);
        out.surface.push_back(origin);
        out.rays.push_back(Ray{origin, slerp_dir(last_dir, next_dir, t),
                               std::numeric_limits<double>::infinity(),
                               element_id, false});
        if (stats) ++stats->edge_refinement_rays;
      }
    }
  }
  return out;
}

void resolve_self_intersections(ElementRays& er,
                                const BoundaryLayerOptions& opts,
                                IntersectionStats* stats) {
  const std::size_t nr = er.rays.size();
  const std::size_t ns = er.surface.size();
  if (nr == 0) return;

  // Segment per ray at its current cap, plus the element's own surface
  // segments (a cove wall's rays must not pierce the opposite wall).
  std::vector<Segment> segs(nr + ns);
  BBox2 world;
  for (std::size_t i = 0; i < nr; ++i) {
    const Ray& r = er.rays[i];
    segs[i] = Segment{r.origin, r.origin + r.dir * cap_height(r, opts)};
    world.expand(segs[i].bbox());
  }
  for (std::size_t i = 0; i < ns; ++i) {
    segs[nr + i] = Segment{er.surface[i], er.surface[(i + 1) % ns]};
    world.expand(segs[nr + i].bbox());
  }

  AlternatingDigitalTree adt(world.inflated(1e-12 + 1e-9 * world.width()));
  for (std::size_t i = 0; i < segs.size(); ++i) {
    adt.insert(segs[i].bbox(), static_cast<std::uint32_t>(i));
  }

  for (std::size_t i = 0; i < nr; ++i) {
    Ray& ri = er.rays[i];
    adt.for_each_overlap(segs[i].bbox(), [&](std::uint32_t j) {
      if (j <= i && j < nr) return;  // each ray pair once
      const bool other_is_surface = j >= nr;
      const Ray* rj = other_is_surface ? nullptr : &er.rays[j];
      if (rj && rj->origin == ri.origin) return;  // fan siblings
      if (stats) ++stats->self_pairs_tested;
      const IntersectResult hit = intersect(segs[i], segs[j]);
      if (!hit) return;
      if (other_is_surface) {
        if (hit.kind != IntersectKind::kProper) return;  // origin touches
        const double d = distance(ri.origin, hit.point);
        ri.max_height =
            std::min(ri.max_height, d * opts.truncation_margin);
        if (stats) ++stats->surface_truncations;
        return;
      }
      if (hit.kind == IntersectKind::kEndpoint &&
          (hit.point == ri.origin || hit.point == rj->origin)) {
        return;  // touching at the surface is not a collision
      }
      Ray& rjm = er.rays[j];
      const double di = distance(ri.origin, hit.point);
      const double dj = distance(rjm.origin, hit.point);
      ri.max_height = std::min(ri.max_height, di * opts.truncation_margin);
      rjm.max_height = std::min(rjm.max_height, dj * opts.truncation_margin);
      if (stats) ++stats->self_truncations;
    });
  }
}

int layer_count(const Ray& ray, double lateral_spacing, double angle_spread,
                const BoundaryLayerOptions& opts) {
  int k = 0;
  while (k < opts.max_layers) {
    const double next_height = opts.growth.height(k + 1);
    if (next_height > ray.max_height) break;
    // Lateral spacing at this height: base spacing plus fan divergence.
    const double lateral =
        lateral_spacing + next_height * angle_spread;
    if (lateral > 0.0 &&
        opts.growth.spacing(k + 1) >= opts.isotropy_factor * lateral) {
      break;  // the next layer's triangles would already be isotropic
    }
    ++k;
  }
  return k;
}

Vec2 ray_tip(const Ray& ray, int layers, const GrowthFunction& growth) {
  return ray.origin + ray.dir * growth.height(layers);
}

void resolve_multi_element_intersections(std::vector<ElementRays>& elements,
                                         const BoundaryLayerOptions& opts,
                                         IntersectionStats* stats) {
  const std::size_t ne = elements.size();
  if (ne < 2) return;

  // Outer borders at current truncation heights (isotropy ignored here: the
  // conservative full-height border only over-truncates slightly).
  struct Border {
    std::vector<Segment> segs;
    BBox2 aabb;
  };
  std::vector<Border> borders(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    const auto& rays = elements[e].rays;
    Border& b = borders[e];
    b.segs.reserve(rays.size());
    for (std::size_t i = 0; i < rays.size(); ++i) {
      const Ray& r0 = rays[i];
      const Ray& r1 = rays[(i + 1) % rays.size()];
      const Vec2 t0 = r0.origin + r0.dir * cap_height(r0, opts);
      const Vec2 t1 = r1.origin + r1.dir * cap_height(r1, opts);
      if (t0 == t1) continue;
      b.segs.push_back(Segment{t0, t1});
      b.aabb.expand(t0);
      b.aabb.expand(t1);
    }
    // The whole boundary layer of e also spans from the surface outward.
    for (const Ray& r : rays) {
      b.aabb.expand(r.origin);
    }
  }

  for (std::size_t a = 0; a < ne; ++a) {
    for (std::size_t b = 0; b < ne; ++b) {
      if (a == b || borders[b].segs.empty()) continue;
      // Stage 1: AABB prune with Cohen-Sutherland clipping.
      std::vector<std::uint32_t> candidates;
      for (std::uint32_t i = 0; i < elements[a].rays.size(); ++i) {
        const Ray& r = elements[a].rays[i];
        const Vec2 tip = r.origin + r.dir * cap_height(r, opts);
        if (segment_intersects_box(r.origin, tip, borders[b].aabb)) {
          candidates.push_back(i);
        }
      }
      if (candidates.empty()) continue;
      if (stats) stats->multi_candidates += candidates.size();

      // Stage 2: ADT over the border segments' extent boxes.
      BBox2 world = borders[b].aabb;
      for (const std::uint32_t i : candidates) {
        const Ray& r = elements[a].rays[i];
        world.expand(r.origin);
        world.expand(r.origin + r.dir * cap_height(r, opts));
      }
      AlternatingDigitalTree adt(world.inflated(1e-12 + 1e-9 * world.width()));
      for (std::uint32_t j = 0; j < borders[b].segs.size(); ++j) {
        adt.insert(borders[b].segs[j].bbox(), j);
      }

      // Stage 3: exact intersection for surviving pairs.
      for (const std::uint32_t i : candidates) {
        Ray& r = elements[a].rays[i];
        const Segment rs{r.origin, r.origin + r.dir * cap_height(r, opts)};
        double nearest = std::numeric_limits<double>::infinity();
        adt.for_each_overlap(rs.bbox(), [&](std::uint32_t j) {
          if (stats) ++stats->multi_pairs_tested;
          const IntersectResult hit = intersect(rs, borders[b].segs[j]);
          if (!hit) return;
          nearest = std::min(nearest, distance(r.origin, hit.point));
        });
        if (nearest < std::numeric_limits<double>::infinity()) {
          r.max_height =
              std::min(r.max_height, nearest * opts.truncation_margin);
          if (stats) ++stats->multi_truncations;
        }
      }
    }
  }
}

}  // namespace aero
