// aeromeshd: the meshing-as-a-service daemon. Listens on an AF_UNIX stream
// socket, decodes CRC-framed MeshRequests, multiplexes them through one
// in-process MeshServer (bounded admission, priority dispatch, result
// cache), and streams typed MeshResponses back. One connection is one
// session; a session's requests are answered in order, and concurrent
// tenants simply open concurrent connections.
//
// Shutdown: SIGINT/SIGTERM, or a kShutdown control frame from any client
// (what `aeromesh-client --shutdown` sends). Either way the daemon stops
// accepting, answers queued requests with kShutdown, finishes in-flight
// meshes, and exits 0.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/annotations.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "service/channel.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

namespace {

std::atomic<bool> g_stop AERO_ATOMIC_ROLE(flag){false};
std::atomic<int> g_listen_fd AERO_ATOMIC_ROLE(published){-1};
std::atomic<int> g_signals AERO_ATOMIC_ROLE(counter){0};

void handle_stop_signal(int) {
  if (g_signals.fetch_add(1) >= 1) std::_Exit(130);  // second signal: now
  g_stop.store(true);
  // Unblock the accept loop; shutdown() is async-signal-safe.
  const int fd = g_listen_fd.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void request_shutdown() {
  g_stop.store(true);
  const int fd = g_listen_fd.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

struct Flag {
  const char* flag;
  const char* value_name;
  const char* help;
};

constexpr Flag kFlags[] = {
    {"--socket", "PATH",
     "unix socket to listen on (default /tmp/aeromeshd.sock)"},
    {"--workers", "N", "concurrent dispatch workers (default 2)"},
    {"--queue-capacity", "N",
     "admission queue bound; beyond it requests are rejected kOverloaded "
     "(default 16)"},
    {"--cache-mb", "N", "result cache budget in MiB, 0 disables (default 256)"},
    {"--threads-per-rank", "T",
     "intra-rank threads forced onto every request's refinement (default 1; "
     "performance-only, the mesh is identical at every T)"},
    {"--allow-oversubscribe", nullptr,
     "skip the workers x threads <= hardware cores admission check"},
    {"--hold-ms", "N",
     "debug: hold each request N ms after dequeue, before meshing (makes "
     "queue occupancy deterministic for tests; default 0)"},
    {"--metrics", "FILE", "write metrics.json on exit"},
    {"--help", nullptr, "print this table and exit"},
};

[[noreturn]] void usage(const char* argv0, bool requested) {
  FILE* out = requested ? stdout : stderr;
  std::fprintf(out, "usage: %s [options]\n\noptions:\n", argv0);
  for (const Flag& f : kFlags) {
    char head[64];
    std::snprintf(head, sizeof(head), "%s %s", f.flag,
                  f.value_name != nullptr ? f.value_name : "");
    std::fprintf(out, "  %-24s %s\n", head, f.help);
  }
  std::exit(requested ? 0 : 2);
}

/// One connection's read-decode-submit-respond loop. Runs until the peer
/// hangs up, sends garbage the framing rejects, or asks for shutdown.
void serve_session(int fd, aero::MeshServer& server) {
  for (;;) {
    aero::FrameKind kind{};
    std::vector<std::uint8_t> payload;
    if (!read_frame(fd, &kind, &payload)) break;
    if (kind == aero::FrameKind::kShutdown) {
      std::printf("aeromeshd: shutdown requested by client\n");
      request_shutdown();
      break;
    }
    if (kind != aero::FrameKind::kRequest) break;

    aero::MeshResponse resp;
    aero::MeshRequest req;
    if (!decode_request(payload, &req)) {
      resp.status = aero::ServiceStatus::kMalformed;
      resp.error = "request bytes failed the CRC/format checks";
      aero::obs::MetricsRegistry::global()
          .counter("service.malformed")
          .add();
    } else {
      resp = server.submit_wait(std::move(req));
    }
    if (!write_frame(fd, aero::FrameKind::kResponse,
                     encode_response(resp))) {
      break;
    }
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/aeromeshd.sock";
  std::string metrics_path;
  aero::ServerConfig config;
  long hold_ms = 0;
  bool allow_oversubscribe = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        usage(argv[0], false);
      }
      return argv[++i];
    };
    if (arg == "--help") usage(argv[0], true);
    if (arg == "--allow-oversubscribe") {
      allow_oversubscribe = true;
      continue;
    }
    if (const char* v = value("--socket")) {
      socket_path = v;
    } else if (const char* v = value("--workers")) {
      config.workers = std::atoi(v);
    } else if (const char* v = value("--queue-capacity")) {
      config.queue_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (const char* v = value("--cache-mb")) {
      config.cache_bytes = static_cast<std::size_t>(std::atol(v)) << 20;
    } else if (const char* v = value("--threads-per-rank")) {
      config.threads_per_rank = std::atoi(v);
    } else if (const char* v = value("--hold-ms")) {
      hold_ms = std::atol(v);
    } else if (const char* v = value("--metrics")) {
      metrics_path = v;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      usage(argv[0], false);
    }
  }
  if (config.threads_per_rank < 1) {
    std::fprintf(stderr, "error: --threads-per-rank must be >= 1\n");
    return 2;
  }
  // Total-core admission: every worker can hold threads_per_rank meshing
  // threads at once, so the product is the daemon's steady-state thread
  // demand. Refusing an oversubscribed launch at startup beats thrashing
  // every tenant at runtime; --allow-oversubscribe records the operator's
  // explicit decision to run hot (e.g. on a shared box with idle workers).
  {
    const unsigned cores = std::thread::hardware_concurrency();
    const long demand = static_cast<long>(config.workers < 1 ? 1
                                                             : config.workers) *
                        config.threads_per_rank;
    if (cores > 0 && demand > static_cast<long>(cores) &&
        !allow_oversubscribe) {
      std::fprintf(stderr,
                   "error: workers (%d) x threads-per-rank (%d) = %ld exceeds "
                   "the %u hardware cores; lower one or pass "
                   "--allow-oversubscribe\n",
                   config.workers, config.threads_per_rank, demand, cores);
      return 2;
    }
  }
  if (hold_ms > 0) {
    config.before_mesh = [hold_ms](const aero::MeshRequest&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    };
  }

  std::string error;
  const int listen_fd = aero::listen_unix(socket_path, &error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a gone client is that session's problem

  aero::MeshServer server(config);
  std::printf(
      "aeromeshd: listening on %s (workers=%d threads-per-rank=%d queue=%zu "
      "cache=%zu MiB)\n",
      socket_path.c_str(), config.workers, config.threads_per_rank,
      config.queue_capacity, config.cache_bytes >> 20);
  std::fflush(stdout);

  std::vector<std::thread> sessions;
  while (!g_stop.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (signal or kShutdown frame)
    }
    sessions.emplace_back([fd, &server] { serve_session(fd, server); });
  }

  // Drain: any session blocked reading a socket keeps its client until the
  // response round-trip finishes; the server answers its queue first.
  server.stop();
  for (std::thread& s : sessions) {
    if (s.joinable()) s.join();
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());

  const aero::ServerStats stats = server.stats();
  const aero::ResultCache::Stats cache = server.cache_stats();
  std::printf(
      "aeromeshd: exiting (submitted=%zu ok=%zu cache_hits=%zu "
      "overloaded=%zu invalid=%zu failed=%zu shutdown=%zu)\n",
      stats.submitted, stats.ok, stats.cache_hits, stats.rejected_overload,
      stats.invalid, stats.failed, stats.shutdown_rejects);
  std::printf("aeromeshd: cache entries=%zu bytes=%zu hits=%zu evictions=%zu\n",
              cache.entries, cache.bytes, cache.hits, cache.evictions);
  if (!metrics_path.empty()) {
    if (aero::obs::write_metrics_json(aero::obs::MetricsRegistry::global(), {},
                                      metrics_path)) {
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   metrics_path.c_str());
    }
  }
  return 0;
}
