#pragma once

// Result cache of the meshing service: canonical config hash -> serialized
// mesh block, LRU-evicted under a byte budget. The key is
// mesh_config_hash(options) (core/options_hash), i.e. exactly the
// mesh-defining inputs -- rank count, transport, tracing, and fault
// injection do not change the triangles, so a mesh computed under any of
// them answers every equivalent future request. Meshing is deterministic,
// which is what makes this safe: a hit returns bytes bit-identical to what
// re-meshing would have produced (bench_service proves this every run).

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "obs/annotations.hpp"

namespace aero {

/// Thread-safe LRU cache of serialized meshes under a byte budget.
class ResultCache {
 public:
  struct Entry {
    std::vector<std::uint8_t> mesh_blob;
    std::uint64_t triangles = 0;
    std::uint64_t vertices = 0;
  };

  struct Stats {
    std::size_t entries = 0;
    std::size_t bytes = 0;        ///< payload bytes currently resident
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;    ///< entries LRU-evicted for space
    std::size_t rejected_oversize = 0;  ///< entries larger than the budget
  };

  /// `byte_budget` bounds the summed mesh_blob bytes; 0 disables caching
  /// (every lookup misses, every insert is dropped).
  explicit ResultCache(std::size_t byte_budget) : budget_(byte_budget) {}

  /// Copy the entry for `key` out (and mark it most-recently used).
  [[nodiscard]] bool lookup(std::uint64_t key, Entry* out);

  /// Insert (or refresh) `key`. Entries larger than the whole budget are
  /// dropped; otherwise least-recently-used entries are evicted until the
  /// new entry fits.
  void insert(std::uint64_t key, Entry entry);

  Stats stats() const;
  std::size_t byte_budget() const { return budget_; }

 private:
  void evict_for(std::size_t need) AERO_REQUIRES(m_);

  const std::size_t budget_;
  mutable Mutex m_ AERO_LOCK_NAME("svc.cache", 6);
  /// Keys in recency order, most recent first.
  std::list<std::uint64_t> lru_ AERO_GUARDED_BY(m_);
  struct Slot {
    Entry entry;
    std::list<std::uint64_t>::iterator pos;
  };
  std::unordered_map<std::uint64_t, Slot> map_ AERO_GUARDED_BY(m_);
  Stats stats_ AERO_GUARDED_BY(m_);
};

}  // namespace aero
