#include "service/wire.hpp"

#include <cstring>
#include <type_traits>

#include "core/crc32.hpp"
#include "core/mesh_view.hpp"

namespace aero {

namespace {

constexpr std::uint32_t kRequestMagic = 0x414d5251;   // "AMRQ"
constexpr std::uint32_t kResponseMagic = 0x414d5253;  // "AMRS"
constexpr std::uint32_t kWireVersion = 1;

/// Hard sanity bounds: a corrupt length field must fail decode, not become
/// a multi-gigabyte allocation (same posture as the journal's record cap).
constexpr std::uint64_t kMaxElements = 1u << 16;
constexpr std::uint64_t kMaxSurfacePoints = 1u << 24;
constexpr std::uint32_t kMaxStringBytes = 1u << 20;
constexpr std::uint64_t kMaxMeshBytes = std::uint64_t{1} << 33;  // 8 GiB

// -- byte-order-naive scalar codec (native little-endian, like the pool's
//    serializers and the journal; the service speaks same-ABI processes) ---

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void put_bytes(std::vector<std::uint8_t>& out, const std::uint8_t* p,
               std::size_t n) {
  out.insert(out.end(), p, p + n);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  put_bytes(out, reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

/// Bounds-checked sequential reader; every get_* returns false on underrun
/// so decoders are a straight-line chain of `if (!r.get(...)) return false`.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : p_(data), end_(data + n) {}

  template <typename T>
  [[nodiscard]] bool get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  [[nodiscard]] bool get_bytes(std::uint8_t* out, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }

  [[nodiscard]] bool get_string(std::string* out) {
    std::uint32_t len = 0;
    if (!get(&len) || len > kMaxStringBytes || remaining() < len) return false;
    out->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return true;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Stamp the CRC-32 trailer over everything encoded so far.
void seal(std::vector<std::uint8_t>& out) {
  const std::uint32_t crc = crc32(out.data(), out.size());
  put(out, crc);
}

/// Verify the trailer and return the payload span before it.
bool unseal(const std::uint8_t* data, std::size_t n, Reader* out) {
  if (n < sizeof(std::uint32_t)) return false;
  const std::size_t body = n - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, data + body, sizeof(stored));
  if (crc32(data, body) != stored) return false;
  *out = Reader(data, body);
  return true;
}

}  // namespace

const char* to_string(ServiceStatus s) {
  switch (s) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kOverloaded: return "overloaded";
    case ServiceStatus::kInvalidOptions: return "invalid-options";
    case ServiceStatus::kPartial: return "partial";
    case ServiceStatus::kStopped: return "stopped";
    case ServiceStatus::kFailed: return "failed";
    case ServiceStatus::kMalformed: return "malformed";
    case ServiceStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::vector<std::uint8_t> serialize_mesh(const MergedMesh& mesh) {
  // The wire form IS the versioned MeshView blob; the cache stores it
  // verbatim and replayed journals parse it back through MeshView.
  return MeshView(mesh).serialize();
}

bool mesh_blob_counts(const std::vector<std::uint8_t>& blob,
                      std::uint64_t* points, std::uint64_t* triangles) {
  return mesh_blob_status(blob, points, triangles) == MeshBlobStatus::kOk;
}

std::vector<std::uint8_t> encode_request(const MeshRequest& request) {
  const Options& o = request.options;
  std::vector<std::uint8_t> out;
  put(out, kRequestMagic);
  put(out, kWireVersion);
  put(out, request.id);
  put(out, request.priority);
  // Mesh-defining knobs, in options.hpp declaration order.
  put(out, static_cast<std::uint8_t>(o.growth_kind));
  put(out, o.first_height);
  put(out, o.growth_ratio);
  put<std::int32_t>(out, o.max_layers);
  put(out, o.farfield_chords);
  put(out, o.nearbody_margin);
  put(out, o.grade);
  put(out, o.surface_length_factor);
  put<std::uint64_t>(out, o.bl_min_points);
  put<std::int32_t>(out, o.bl_max_level);
  put(out, o.inviscid_target_triangles);
  put<std::int32_t>(out, o.inviscid_max_level);
  // Runtime knobs a tenant may legitimately pick (they do not change the
  // triangles, only how they are computed).
  put<std::int32_t>(out, o.ranks);
  put<std::uint8_t>(out, o.rma ? 1 : 0);
  put<std::uint64_t>(out, o.rma_threshold);
  put<std::int64_t>(out, o.coalesce_us);
  put<std::int64_t>(out, o.ack_timeout_ms);
  put<std::int64_t>(out, o.heartbeat_timeout_ms);
  put<std::int64_t>(out, o.watchdog_timeout_s);
  put(out, o.fault_rate);
  put(out, o.fault_seed);
  // Geometry.
  put(out, o.airfoil.chord);
  put<std::uint64_t>(out, o.airfoil.elements.size());
  for (const AirfoilElement& e : o.airfoil.elements) {
    put_string(out, e.name);
    put<std::uint64_t>(out, e.surface.size());
    put_bytes(out, reinterpret_cast<const std::uint8_t*>(e.surface.data()),
              e.surface.size() * sizeof(Vec2));
  }
  seal(out);
  return out;
}

bool decode_request(const std::uint8_t* data, std::size_t n,
                    MeshRequest* out) {
  Reader r(nullptr, 0);
  if (!unseal(data, n, &r)) return false;
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != kRequestMagic) return false;
  if (!r.get(&version) || version != kWireVersion) return false;
  MeshRequest req;
  Options& o = req.options;
  std::uint8_t growth = 0, rma = 0;
  std::int32_t max_layers = 0, bl_max_level = 0, inviscid_max_level = 0;
  std::int32_t ranks = 0;
  std::uint64_t bl_min_points = 0, rma_threshold = 0;
  std::int64_t coalesce = 0, ack = 0, heartbeat = 0, watchdog = 0;
  if (!r.get(&req.id) || !r.get(&req.priority) || !r.get(&growth) ||
      !r.get(&o.first_height) || !r.get(&o.growth_ratio) ||
      !r.get(&max_layers) || !r.get(&o.farfield_chords) ||
      !r.get(&o.nearbody_margin) || !r.get(&o.grade) ||
      !r.get(&o.surface_length_factor) || !r.get(&bl_min_points) ||
      !r.get(&bl_max_level) || !r.get(&o.inviscid_target_triangles) ||
      !r.get(&inviscid_max_level) || !r.get(&ranks) || !r.get(&rma) ||
      !r.get(&rma_threshold) || !r.get(&coalesce) || !r.get(&ack) ||
      !r.get(&heartbeat) || !r.get(&watchdog) || !r.get(&o.fault_rate) ||
      !r.get(&o.fault_seed)) {
    return false;
  }
  if (growth > static_cast<std::uint8_t>(GrowthKind::kAdaptive)) return false;
  o.growth_kind = static_cast<GrowthKind>(growth);
  o.max_layers = max_layers;
  o.bl_min_points = static_cast<std::size_t>(bl_min_points);
  o.bl_max_level = bl_max_level;
  o.inviscid_max_level = inviscid_max_level;
  o.ranks = ranks;
  o.rma = rma != 0;
  o.rma_threshold = static_cast<std::size_t>(rma_threshold);
  o.coalesce_us = static_cast<long>(coalesce);
  o.ack_timeout_ms = static_cast<long>(ack);
  o.heartbeat_timeout_ms = static_cast<long>(heartbeat);
  o.watchdog_timeout_s = static_cast<long>(watchdog);
  std::uint64_t nelems = 0;
  if (!r.get(&o.airfoil.chord) || !r.get(&nelems) || nelems > kMaxElements) {
    return false;
  }
  o.airfoil.elements.resize(static_cast<std::size_t>(nelems));
  for (AirfoilElement& e : o.airfoil.elements) {
    std::uint64_t npts = 0;
    if (!r.get_string(&e.name) || !r.get(&npts) ||
        npts > kMaxSurfacePoints) {
      return false;
    }
    e.surface.resize(static_cast<std::size_t>(npts));
    if (!r.get_bytes(reinterpret_cast<std::uint8_t*>(e.surface.data()),
                     e.surface.size() * sizeof(Vec2))) {
      return false;
    }
  }
  if (r.remaining() != 0) return false;  // trailing garbage
  *out = std::move(req);
  return true;
}

bool decode_request(const std::vector<std::uint8_t>& bytes, MeshRequest* out) {
  return decode_request(bytes.data(), bytes.size(), out);
}

std::vector<std::uint8_t> encode_response(const MeshResponse& response) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + response.error.size() + response.mesh_blob.size());
  put(out, kResponseMagic);
  put(out, kWireVersion);
  put(out, response.id);
  put(out, static_cast<std::uint8_t>(response.status));
  put<std::uint8_t>(out, response.cache_hit ? 1 : 0);
  put(out, response.cache_key);
  put(out, response.triangles);
  put(out, response.vertices);
  put(out, response.mesh_wall_ms);
  put(out, response.queue_ms);
  put_string(out, response.error);
  put<std::uint64_t>(out, response.mesh_blob.size());
  put_bytes(out, response.mesh_blob.data(), response.mesh_blob.size());
  seal(out);
  return out;
}

bool decode_response(const std::uint8_t* data, std::size_t n,
                     MeshResponse* out) {
  Reader r(nullptr, 0);
  if (!unseal(data, n, &r)) return false;
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || magic != kResponseMagic) return false;
  if (!r.get(&version) || version != kWireVersion) return false;
  MeshResponse resp;
  std::uint8_t status = 0, hit = 0;
  if (!r.get(&resp.id) || !r.get(&status) || !r.get(&hit) ||
      !r.get(&resp.cache_key) || !r.get(&resp.triangles) ||
      !r.get(&resp.vertices) || !r.get(&resp.mesh_wall_ms) ||
      !r.get(&resp.queue_ms) || !r.get_string(&resp.error)) {
    return false;
  }
  if (status > static_cast<std::uint8_t>(ServiceStatus::kShutdown)) {
    return false;
  }
  resp.status = static_cast<ServiceStatus>(status);
  resp.cache_hit = hit != 0;
  std::uint64_t blob_len = 0;
  if (!r.get(&blob_len) || blob_len > kMaxMeshBytes ||
      r.remaining() != blob_len) {
    return false;
  }
  resp.mesh_blob.resize(static_cast<std::size_t>(blob_len));
  if (!r.get_bytes(resp.mesh_blob.data(), resp.mesh_blob.size())) {
    return false;
  }
  *out = std::move(resp);
  return true;
}

bool decode_response(const std::vector<std::uint8_t>& bytes,
                     MeshResponse* out) {
  return decode_response(bytes.data(), bytes.size(), out);
}

}  // namespace aero
