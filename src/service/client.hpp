#pragma once

// Client-side convenience over the service wire: connect to an aeromeshd
// unix socket, send requests, collect typed responses. One ServiceClient is
// one connection; requests on it are answered in submission order (the
// daemon pipelines per-connection responses back in request order, so a
// tenant wanting concurrency opens several connections).

#include <cstdint>
#include <string>

#include "service/wire.hpp"

namespace aero {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connect to the daemon at `socket_path`. False (with `error()` set) on
  /// failure. Reconnecting an already-connected client closes the old
  /// connection first.
  [[nodiscard]] bool connect(const std::string& socket_path);

  /// Send one request and block for its response. A transport failure
  /// (daemon gone, corrupt frame) is reported as a kFailed response with
  /// the detail in `error` -- callers always get a MeshResponse.
  MeshResponse request(const MeshRequest& req);

  /// Ask the daemon to shut down (finish in-flight work, then exit).
  /// False if the control frame could not be sent.
  [[nodiscard]] bool shutdown_server();

  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  void close();

 private:
  int fd_ = -1;
  std::string error_;
};

}  // namespace aero
