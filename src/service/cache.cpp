#include "service/cache.hpp"

#include <utility>

namespace aero {

bool ResultCache::lookup(std::uint64_t key, Entry* out) {
  const MutexLock lock(m_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  // Refresh recency: splice the key to the front without reallocating.
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  it->second.pos = lru_.begin();
  ++stats_.hits;
  *out = it->second.entry;
  return true;
}

void ResultCache::insert(std::uint64_t key, Entry entry) {
  const std::size_t need = entry.mesh_blob.size();
  const MutexLock lock(m_);
  if (need > budget_) {
    ++stats_.rejected_oversize;
    return;
  }
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place (deterministic meshing means the bytes match, but a
    // refresh keeps the accounting honest if an entry was re-meshed).
    stats_.bytes -= it->second.entry.mesh_blob.size();
    stats_.bytes += need;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    it->second.pos = lru_.begin();
    it->second.entry = std::move(entry);
    evict_for(0);
    return;
  }
  evict_for(need);
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
  stats_.bytes += need;
  ++stats_.insertions;
  stats_.entries = map_.size();
}

void ResultCache::evict_for(std::size_t need) {
  while (!lru_.empty() && stats_.bytes + need > budget_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = map_.find(victim);
    stats_.bytes -= it->second.entry.mesh_blob.size();
    map_.erase(it);
    ++stats_.evictions;
  }
  stats_.entries = map_.size();
}

ResultCache::Stats ResultCache::stats() const {
  const MutexLock lock(m_);
  return stats_;
}

}  // namespace aero
