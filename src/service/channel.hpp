#pragma once

// Byte-stream framing and AF_UNIX plumbing shared by the aeromeshd daemon
// and the aeromesh-client library. A frame is
//
//   [magic u32 | kind u8 | payload_len u64 | payload bytes]
//
// where the payload is a wire.hpp-encoded message (which carries its own
// CRC-32 trailer, so the channel does not re-checksum). kShutdown frames
// have an empty payload: they are a control message asking the daemon to
// stop accepting and exit once in-flight requests finish.
//
// All reads/writes loop over short transfers and EINTR; errors and peer
// hangups surface as boolean failures, never exceptions, because a broken
// client connection must cost the daemon one session, not the process.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aero {

enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kShutdown = 3,
};

/// Write one frame to `fd`. False on any short write or socket error.
[[nodiscard]] bool write_frame(int fd, FrameKind kind,
                               const std::uint8_t* payload, std::size_t n);
[[nodiscard]] bool write_frame(int fd, FrameKind kind,
                               const std::vector<std::uint8_t>& payload);

/// Read one frame from `fd`. False on EOF, a bad magic/kind, an oversized
/// length, or a short read.
[[nodiscard]] bool read_frame(int fd, FrameKind* kind,
                              std::vector<std::uint8_t>* payload);

/// Create, bind, and listen on an AF_UNIX stream socket at `path`
/// (unlinking any stale socket file first). Returns the listening fd, or
/// -1 with a message in `*error`.
int listen_unix(const std::string& path, std::string* error);

/// Connect to the AF_UNIX socket at `path`. Returns the connected fd, or
/// -1 with a message in `*error`.
int connect_unix(const std::string& path, std::string* error);

}  // namespace aero
