#pragma once

// Meshing-as-a-service wire contract: the request/response value types the
// aeromeshd daemon, the in-process MeshServer, and aeromesh-client all speak.
//
// A MeshRequest is a validated-Options problem statement: the geometry plus
// every mesh-defining and runtime knob a remote tenant may set. Server-side
// concerns (checkpoint/resume paths, budgets, phase hooks, stop flags) are
// deliberately NOT on the wire -- a tenant describes the mesh it wants, not
// the server's disk layout. A MeshResponse carries a typed ServiceStatus,
// the cache verdict, latency accounting, and (on success) the mesh itself in
// the same flat little-endian block format as io/mesh_io's write_binary.
//
// Codec: encode_* produce a self-contained byte string ending in the same
// CRC-32 trailer as the pool's protocol payloads (core/crc32), so a
// corrupted or truncated message is detected at the receiver instead of
// being deserialized into garbage; decode_* return false instead of
// throwing, because a malformed request from one tenant must degrade to one
// kMalformed response, never take down the daemon.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/merged_mesh.hpp"
#include "core/options.hpp"

namespace aero {

/// Typed outcome of one service request. Small and stable on purpose: the
/// daemon's exit codes, the client's --expect checks, and the smoke test all
/// match on these names.
enum class ServiceStatus : std::uint8_t {
  kOk = 0,          ///< complete mesh in the response payload
  kOverloaded = 1,  ///< admission queue full; retry later (backpressure)
  kInvalidOptions = 2,  ///< Options::validate() reported errors (see error)
  kPartial = 3,     ///< pool lost results; best-effort mesh returned
  kStopped = 4,     ///< run drained on a budget/stop; partial mesh returned
  kFailed = 5,      ///< meshing threw or the watchdog aborted the run
  kMalformed = 6,   ///< request bytes failed the CRC/format checks
  kShutdown = 7,    ///< server stopping; request was not processed
};

const char* to_string(ServiceStatus s);

/// One tenant request: a problem statement over validated aero::Options.
struct MeshRequest {
  /// Caller-chosen correlation id, echoed verbatim in the response.
  std::uint64_t id = 0;
  /// Dispatch priority: among queued requests a higher value dispatches
  /// first; equal priorities dispatch FIFO (admission order).
  std::int32_t priority = 0;
  /// Geometry + knobs. Only wire-carried fields survive a round-trip:
  /// paths, hooks, stop flags, and budgets are server-side and reset to
  /// their defaults by decode_request.
  Options options;
};

/// One service response. `mesh_blob` is empty unless status is kOk,
/// kPartial, or kStopped (a partial mesh is still a valid mesh).
struct MeshResponse {
  std::uint64_t id = 0;
  ServiceStatus status = ServiceStatus::kFailed;
  bool cache_hit = false;
  /// Canonical cache key of the request (mesh_config_hash); 0 when the
  /// request never reached admission (malformed/invalid).
  std::uint64_t cache_key = 0;
  std::uint64_t triangles = 0;
  std::uint64_t vertices = 0;
  /// Time spent meshing (0 on a cache hit).
  double mesh_wall_ms = 0.0;
  /// Admission-to-dispatch wait (0 for requests answered at admission).
  double queue_ms = 0.0;
  /// Human-readable detail for error statuses (validation issues, throw
  /// messages); empty on success.
  std::string error;
  /// Versioned MeshView blob: ["AMSH" | u32 version | n_points u64 |
  /// n_tris u64 | points (2 f64 each) | tris (3 u32 each)]. See
  /// core/mesh_view.hpp for the layout contract and typed rejection.
  std::vector<std::uint8_t> mesh_blob;
};

/// Serialize a merged mesh into the response's versioned blob format
/// (thin wrapper over MeshView::serialize).
std::vector<std::uint8_t> serialize_mesh(const MergedMesh& mesh);

/// Parse a mesh blob's header; false when the blob is untagged, truncated,
/// from another layout version, or its counts are inconsistent with its
/// size. Use mesh_blob_status (core/mesh_view.hpp) for the typed reason.
bool mesh_blob_counts(const std::vector<std::uint8_t>& blob,
                      std::uint64_t* points, std::uint64_t* triangles);

/// Encode/decode a request. The decoder accepts exactly what the encoder
/// emits (one version, CRC-checked) and rejects everything else.
std::vector<std::uint8_t> encode_request(const MeshRequest& request);
[[nodiscard]] bool decode_request(const std::uint8_t* data, std::size_t n,
                                  MeshRequest* out);
[[nodiscard]] bool decode_request(const std::vector<std::uint8_t>& bytes,
                                  MeshRequest* out);

/// Encode/decode a response. Same contract as the request codec.
std::vector<std::uint8_t> encode_response(const MeshResponse& response);
[[nodiscard]] bool decode_response(const std::uint8_t* data, std::size_t n,
                                   MeshResponse* out);
[[nodiscard]] bool decode_response(const std::vector<std::uint8_t>& bytes,
                                   MeshResponse* out);

}  // namespace aero
