#pragma once

// The in-process meshing service: a bounded admission queue in front of a
// small pool of dispatch workers, each of which runs one request at a time
// through the existing pipeline (sequential, or the rank pool when the
// request asks for ranks > 0), with a result cache short-circuiting
// repeated configurations at admission.
//
// Request lifecycle:
//
//   submit() -> [validate] -> [cache probe] -> [admission queue] -> worker
//      |            |              |                 |
//      |       kInvalidOptions   kOk (cache_hit)   kOverloaded when full
//      |                                            (backpressure: the
//      |                                            caller retries later)
//      +-- kShutdown when the server is stopping
//
// Dispatch order is priority-then-FIFO: among queued requests the highest
// priority dispatches first; equal priorities dispatch in admission order.
// Everything is deterministic given a serial submission order, which is
// what the scheduler tests pin.
//
// The server is transport-agnostic: aeromeshd wraps it in a unix-socket
// accept loop (daemon_main.cpp), tests and benches drive it in-process.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "core/timer.hpp"
#include "obs/annotations.hpp"
#include "service/cache.hpp"
#include "service/wire.hpp"

namespace aero {

/// Server-side tuning. Everything request-specific arrives in MeshRequest;
/// everything capacity-related lives here.
struct ServerConfig {
  /// Concurrent dispatch workers: how many requests mesh at once. Each
  /// worker drives its own pipeline run (a ranks>0 request spins the rank
  /// pool up for that run), so workers x ranks bounds thread pressure.
  int workers = 2;
  /// Admission queue bound. A request arriving with the queue full is
  /// rejected with kOverloaded instead of waiting -- the queue is for
  /// smoothing bursts, not for unbounded buffering.
  std::size_t queue_capacity = 16;
  /// Result-cache byte budget (serialized mesh bytes; 0 = caching off).
  std::size_t cache_bytes = std::size_t{256} << 20;
  /// Intra-rank threads forced onto every admitted request
  /// (Options::threads_per_rank). A capacity knob like `workers`, not a
  /// tenant choice: whatever a request carries is overwritten at admission.
  /// Safe to override precisely because the knob is not mesh-defining — the
  /// mesh and its cache key are identical at every value.
  int threads_per_rank = 1;
  /// Observability/test hook: runs on the worker thread after dequeue,
  /// before meshing. The daemon's --hold-ms debug flag and the overload
  /// tests use it to make queue occupancy deterministic.
  std::function<void(const MeshRequest&)> before_mesh;
};

/// Point-in-time scheduler accounting (the obs service.* counters mirror
/// these; this struct is for programmatic callers and tests).
struct ServerStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;         ///< worker-processed, any status
  std::size_t ok = 0;
  std::size_t cache_hits = 0;
  std::size_t rejected_overload = 0;
  std::size_t invalid = 0;
  std::size_t failed = 0;            ///< kFailed/kPartial/kStopped outcomes
  std::size_t shutdown_rejects = 0;  ///< answered kShutdown while stopping
  std::size_t queue_depth = 0;       ///< current
  std::size_t max_queue_depth = 0;
};

class MeshServer {
 public:
  explicit MeshServer(ServerConfig config);
  ~MeshServer();
  MeshServer(const MeshServer&) = delete;
  MeshServer& operator=(const MeshServer&) = delete;

  /// Admit one request. Always returns a future that will be fulfilled:
  /// immediately for cache hits, rejections, and invalid options; after
  /// meshing for admitted requests. Never throws on bad input -- problems
  /// come back as typed statuses in the response.
  std::future<MeshResponse> submit(MeshRequest request);

  /// Synchronous convenience: submit and wait.
  MeshResponse submit_wait(MeshRequest request) {
    return submit(std::move(request)).get();
  }

  /// Stop accepting, answer queued requests with kShutdown, finish
  /// in-flight requests, join the workers. Idempotent.
  void stop();

  ServerStats stats() const;
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  struct Pending {
    MeshRequest request;
    std::uint64_t cache_key = 0;
    std::promise<MeshResponse> promise;
    Timer queued;  ///< admission-to-dispatch stopwatch
  };
  /// Dispatch order: lowest key first = highest priority, then FIFO seq.
  using DispatchKey = std::pair<std::int64_t, std::uint64_t>;

  void worker_loop();
  void process(Pending pending);
  MeshResponse mesh_one(const MeshRequest& request, std::uint64_t key,
                        double queue_ms);

  const ServerConfig config_;
  ResultCache cache_;

  mutable Mutex m_ AERO_LOCK_NAME("svc.queue", 4);
  CondVar cv_;
  std::map<DispatchKey, Pending> queue_ AERO_GUARDED_BY(m_);
  std::uint64_t seq_ AERO_GUARDED_BY(m_) = 0;
  bool stopping_ AERO_GUARDED_BY(m_) = false;
  ServerStats stats_ AERO_GUARDED_BY(m_);

  /// Threads currently meshing across all workers (each in-flight request
  /// accounts for its ranks-independent threads_per_rank). Mirrored into
  /// the service.threads_active gauge so operators can see thread pressure
  /// against the admission bound.
  std::atomic<int> threads_active_ AERO_ATOMIC_ROLE(counter){0};

  std::vector<std::thread> workers_;
};

}  // namespace aero
