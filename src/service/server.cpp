#include "service/server.hpp"

#include <exception>
#include <string>
#include <utility>

#include "core/mesh_view.hpp"
#include "core/options_hash.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_driver.hpp"

namespace aero {

namespace {

/// The wire never carries these, but in-process callers might set them:
/// checkpoint paths, budgets, hooks, and trace toggles are the server
/// operator's concern, not the tenant's. Scrubbing them keeps one request
/// from journaling onto the daemon's disk or flipping the process-global
/// trace recorder under every other tenant.
Options scrub_server_side(Options opts) {
  opts.checkpoint_path.clear();
  opts.resume_path.clear();
  opts.merge_spill_dir.clear();  // spill placement is the operator's call
  opts.stop_flag = nullptr;
  opts.phase_hook = nullptr;
  opts.budget_wall_ms = 0;
  opts.budget_rss_mb = 0;
  opts.trace = false;
  return opts;
}

ServiceStatus from_run_status(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return ServiceStatus::kOk;
    case RunStatus::kPartial: return ServiceStatus::kPartial;
    case RunStatus::kStopped: return ServiceStatus::kStopped;
    case RunStatus::kFailed: return ServiceStatus::kFailed;
    case RunStatus::kMeshTooLarge: return ServiceStatus::kFailed;
  }
  return ServiceStatus::kFailed;
}

obs::Counter& counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

}  // namespace

MeshServer::MeshServer(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_bytes) {
  const int n = config_.workers < 1 ? 1 : config_.workers;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MeshServer::~MeshServer() { stop(); }

std::future<MeshResponse> MeshServer::submit(MeshRequest request) {
  std::promise<MeshResponse> promise;
  std::future<MeshResponse> future = promise.get_future();
  counter("service.submitted").add();

  MeshResponse resp;
  resp.id = request.id;
  request.options = scrub_server_side(std::move(request.options));
  // The thread budget is the operator's capacity decision, like `workers`:
  // whatever the tenant sent is replaced by the server's setting. Done
  // before the cache probe so the hash sees the canonical options (the knob
  // is excluded from mesh_config_hash anyway — it is not mesh-defining).
  request.options.threads_per_rank =
      config_.threads_per_rank < 1 ? 1 : config_.threads_per_rank;

  // Typed validation first: an invalid request never consumes queue space.
  const std::vector<OptionIssue> issues = request.options.validate();
  bool invalid = false;
  for (const OptionIssue& i : issues) invalid = invalid || i.is_error();
  if (invalid) {
    resp.status = ServiceStatus::kInvalidOptions;
    resp.error = format_issues(issues);
    counter("service.invalid").add();
    {
      const MutexLock lock(m_);
      ++stats_.submitted;
      ++stats_.invalid;
    }
    promise.set_value(std::move(resp));
    return future;
  }

  // Cache probe: a repeated configuration is answered at admission, without
  // touching the queue or a worker.
  resp.cache_key = mesh_config_hash(request.options);
  ResultCache::Entry entry;
  if (cache_.lookup(resp.cache_key, &entry) &&
      mesh_blob_status(entry.mesh_blob) == MeshBlobStatus::kOk) {
    AERO_TRACE_INSTANT("service", "cache_hit");
    resp.status = ServiceStatus::kOk;
    resp.cache_hit = true;
    resp.triangles = entry.triangles;
    resp.vertices = entry.vertices;
    resp.mesh_blob = std::move(entry.mesh_blob);
    counter("service.cache_hits").add();
    {
      const MutexLock lock(m_);
      ++stats_.submitted;
      ++stats_.cache_hits;
    }
    promise.set_value(std::move(resp));
    return future;
  }
  counter("service.cache_misses").add();

  // Admission: bounded queue, reject-don't-block when full (backpressure).
  {
    const MutexLock lock(m_);
    ++stats_.submitted;
    if (stopping_) {
      resp.status = ServiceStatus::kShutdown;
      ++stats_.shutdown_rejects;
      counter("service.shutdown_rejects").add();
      promise.set_value(std::move(resp));
      return future;
    }
    if (queue_.size() >= config_.queue_capacity) {
      AERO_TRACE_INSTANT("service", "reject_overload");
      resp.status = ServiceStatus::kOverloaded;
      ++stats_.rejected_overload;
      counter("service.rejected_overload").add();
      promise.set_value(std::move(resp));
      return future;
    }
    Pending pending;
    pending.cache_key = resp.cache_key;
    pending.request = std::move(request);
    pending.promise = std::move(promise);
    const DispatchKey key{-static_cast<std::int64_t>(pending.request.priority),
                          seq_++};
    queue_.emplace(key, std::move(pending));
    stats_.queue_depth = queue_.size();
    if (stats_.queue_depth > stats_.max_queue_depth) {
      stats_.max_queue_depth = stats_.queue_depth;
    }
    obs::MetricsRegistry::global()
        .gauge("service.queue_depth")
        .set(static_cast<double>(stats_.queue_depth));
  }
  cv_.notify_one();
  return future;
}

void MeshServer::worker_loop() {
  AERO_TRACE_THREAD("service.worker", 0);
  for (;;) {
    Pending pending;
    {
      UniqueLock lock(m_);
      while (queue_.empty() && !stopping_) lock.wait(cv_);
      if (queue_.empty()) return;  // stopping, nothing left
      const auto it = queue_.begin();
      pending = std::move(it->second);
      queue_.erase(it);
      stats_.queue_depth = queue_.size();
      obs::MetricsRegistry::global()
          .gauge("service.queue_depth")
          .set(static_cast<double>(stats_.queue_depth));
    }
    process(std::move(pending));
  }
}

void MeshServer::process(Pending pending) {
  AERO_TRACE_SPAN("service", "request");
  const double queue_ms = pending.queued.seconds() * 1e3;
  obs::MetricsRegistry::global().histogram("service.queue_ms").observe(
      queue_ms);
  if (config_.before_mesh) config_.before_mesh(pending.request);
  MeshResponse resp =
      mesh_one(pending.request, pending.cache_key, queue_ms);
  obs::MetricsRegistry::global()
      .histogram("service.latency_ms")
      .observe(queue_ms + resp.mesh_wall_ms);
  {
    const MutexLock lock(m_);
    ++stats_.completed;
    if (resp.status == ServiceStatus::kOk) {
      ++stats_.ok;
    } else {
      ++stats_.failed;
    }
  }
  counter("service.completed").add();
  pending.promise.set_value(std::move(resp));
}

MeshResponse MeshServer::mesh_one(const MeshRequest& request,
                                  std::uint64_t key, double queue_ms) {
  MeshResponse resp;
  resp.id = request.id;
  resp.cache_key = key;
  resp.queue_ms = queue_ms;
  // Thread-pressure accounting: every in-flight request holds its
  // threads_per_rank in the gauge from dispatch to completion, so an
  // operator can read service.threads_active against the core budget the
  // daemon admitted (workers x threads <= hardware_concurrency).
  obs::Gauge& threads_gauge =
      obs::MetricsRegistry::global().gauge("service.threads_active");
  const int threads = request.options.threads_per_rank < 1
                          ? 1
                          : request.options.threads_per_rank;
  threads_gauge.set(static_cast<double>(
      threads_active_.fetch_add(threads, std::memory_order_relaxed) +
      threads));
  Timer wall;
  try {
    MergedMesh mesh;
    if (request.options.ranks > 0) {
      ParallelMeshResult r = parallel_generate_mesh(request.options);
      resp.status = from_run_status(r.status);
      mesh = std::move(r.mesh);
      // Per-request fault accounting, aggregated into the service counters
      // (the injector's chaos plus real recoveries both land here).
      const PoolStats& b = r.bl_pool;
      const PoolStats& i = r.inviscid_pool;
      counter("service.fault_dropped_messages")
          .add(b.dropped_messages + i.dropped_messages);
      counter("service.fault_retransmits").add(b.retransmits + i.retransmits);
      counter("service.fault_unit_retries").add(b.unit_retries +
                                                i.unit_retries);
      counter("service.fault_dead_ranks").add(b.dead_ranks + i.dead_ranks);
    } else {
      MeshGenerationResult r = generate_mesh(request.options);
      resp.status = from_run_status(r.status);
      mesh = std::move(r.mesh);
    }
    resp.mesh_wall_ms = wall.seconds() * 1e3;
    resp.triangles = mesh.triangle_count();
    resp.vertices = mesh.point_count();
    ResultCache::Entry entry;
    entry.mesh_blob = serialize_mesh(mesh);
    entry.triangles = resp.triangles;
    entry.vertices = resp.vertices;
    resp.mesh_blob = entry.mesh_blob;
    // Only a complete mesh is reusable: a partial/stopped result is valid
    // but must not answer future requests for the full configuration.
    if (resp.status == ServiceStatus::kOk) {
      cache_.insert(key, std::move(entry));
    }
  } catch (const std::exception& e) {
    resp.status = ServiceStatus::kFailed;
    resp.error = e.what();
    resp.mesh_wall_ms = wall.seconds() * 1e3;
    counter("service.mesh_exceptions").add();
  }
  threads_gauge.set(static_cast<double>(
      threads_active_.fetch_sub(threads, std::memory_order_relaxed) -
      threads));
  return resp;
}

void MeshServer::stop() {
  std::vector<Pending> drained;
  {
    const MutexLock lock(m_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    for (auto& [key, pending] : queue_) {
      drained.push_back(std::move(pending));
    }
    queue_.clear();
    stats_.queue_depth = 0;
  }
  cv_.notify_all();
  // Queued-but-never-dispatched requests are answered, not dropped: every
  // submitted request gets exactly one response, even across shutdown.
  for (Pending& pending : drained) {
    MeshResponse resp;
    resp.id = pending.request.id;
    resp.cache_key = pending.cache_key;
    resp.status = ServiceStatus::kShutdown;
    counter("service.shutdown_rejects").add();
    {
      const MutexLock lock(m_);
      ++stats_.shutdown_rejects;
    }
    pending.promise.set_value(std::move(resp));
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServerStats MeshServer::stats() const {
  const MutexLock lock(m_);
  return stats_;
}

}  // namespace aero
