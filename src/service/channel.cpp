#include "service/channel.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aero {

namespace {

constexpr std::uint32_t kFrameMagic = 0x414d4652;  // "AMFR"
/// Generous payload bound (well above any realistic serialized mesh): a
/// corrupted length field must not turn into an allocation bomb.
constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 33;

bool write_all(int fd, const void* buf, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* buf, std::size_t n) {
  std::uint8_t* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // peer closed mid-frame (or clean EOF)
    p += static_cast<std::size_t>(r);
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, FrameKind kind, const std::uint8_t* payload,
                 std::size_t n) {
  std::uint8_t header[4 + 1 + 8];
  const std::uint32_t magic = kFrameMagic;
  const std::uint64_t len = n;
  std::memcpy(header, &magic, 4);
  header[4] = static_cast<std::uint8_t>(kind);
  std::memcpy(header + 5, &len, 8);
  if (!write_all(fd, header, sizeof(header))) return false;
  if (n == 0) return true;
  return write_all(fd, payload, n);
}

bool write_frame(int fd, FrameKind kind,
                 const std::vector<std::uint8_t>& payload) {
  return write_frame(fd, kind, payload.data(), payload.size());
}

bool read_frame(int fd, FrameKind* kind, std::vector<std::uint8_t>* payload) {
  std::uint8_t header[4 + 1 + 8];
  if (!read_all(fd, header, sizeof(header))) return false;
  std::uint32_t magic = 0;
  std::uint64_t len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&len, header + 5, 8);
  if (magic != kFrameMagic) return false;
  const std::uint8_t k = header[4];
  if (k < static_cast<std::uint8_t>(FrameKind::kRequest) ||
      k > static_cast<std::uint8_t>(FrameKind::kShutdown)) {
    return false;
  }
  if (len > kMaxFramePayload) return false;
  *kind = static_cast<FrameKind>(k);
  payload->resize(static_cast<std::size_t>(len));
  if (len == 0) return true;
  return read_all(fd, payload->data(), payload->size());
}

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error) *error = std::string("bind ") + path + ": " +
                        std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) < 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error) *error = std::string("connect ") + path + ": " +
                        std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace aero
