#include "service/client.hpp"

#include <unistd.h>

#include <utility>

#include "service/channel.hpp"

namespace aero {

ServiceClient::~ServiceClient() { close(); }

bool ServiceClient::connect(const std::string& socket_path) {
  close();
  error_.clear();
  fd_ = connect_unix(socket_path, &error_);
  return fd_ >= 0;
}

MeshResponse ServiceClient::request(const MeshRequest& req) {
  MeshResponse resp;
  resp.id = req.id;
  resp.status = ServiceStatus::kFailed;
  if (fd_ < 0) {
    resp.error = error_.empty() ? "not connected" : error_;
    return resp;
  }
  const std::vector<std::uint8_t> bytes = encode_request(req);
  if (!write_frame(fd_, FrameKind::kRequest, bytes)) {
    error_ = "send failed (daemon gone?)";
    resp.error = error_;
    close();
    return resp;
  }
  FrameKind kind{};
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, &kind, &payload) || kind != FrameKind::kResponse) {
    error_ = "receive failed (daemon gone or corrupt frame)";
    resp.error = error_;
    close();
    return resp;
  }
  if (!decode_response(payload, &resp)) {
    resp = MeshResponse{};
    resp.id = req.id;
    resp.status = ServiceStatus::kFailed;
    error_ = "response failed CRC/format checks";
    resp.error = error_;
    return resp;
  }
  return resp;
}

bool ServiceClient::shutdown_server() {
  if (fd_ < 0) return false;
  return write_frame(fd_, FrameKind::kShutdown, nullptr, 0);
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace aero
