#include "hull/monotone_chain.hpp"

#include <algorithm>

#include "geom/predicates.hpp"

namespace aero {

std::vector<std::uint32_t> lower_hull(std::span<const Vec2> pts) {
  std::vector<std::uint32_t> h;
  h.reserve(16);
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    // Pop the previous point while it makes a non-left turn (the paper's
    // "right-hand turn" removal, Figure 7).
    while (h.size() >= 2 &&
           orient2d(pts[h[h.size() - 2]], pts[h.back()], pts[i]) <= 0.0) {
      h.pop_back();
    }
    h.push_back(i);
  }
  return h;
}

std::vector<std::uint32_t> convex_hull_ccw(std::span<const Vec2> pts) {
  const std::size_t n = pts.size();
  std::vector<std::uint32_t> h;
  if (n < 3) {
    for (std::uint32_t i = 0; i < n; ++i) h.push_back(i);
    return h;
  }
  // Lower then upper chain; pop only on strict right turns so collinear
  // boundary points survive.
  for (std::uint32_t i = 0; i < n; ++i) {
    while (h.size() >= 2 &&
           orient2d(pts[h[h.size() - 2]], pts[h.back()], pts[i]) < 0.0) {
      h.pop_back();
    }
    h.push_back(i);
  }
  const std::size_t lower_len = h.size();
  for (std::uint32_t i = static_cast<std::uint32_t>(n - 1); i-- > 0;) {
    while (h.size() > lower_len &&
           orient2d(pts[h[h.size() - 2]], pts[h.back()], pts[i]) < 0.0) {
      h.pop_back();
    }
    h.push_back(i);
  }
  h.pop_back();  // the first point would repeat
  return h;
}

std::vector<std::uint32_t> lifted_lower_hull(std::span<const Vec2> pts,
                                             Vec2 median, CutAxis axis) {
  // Index order: by u, with equal-u runs ordered by exact lifted w so the
  // chain scan sees a proper lexicographic (u, w) order.
  std::vector<std::uint32_t> order(pts.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::size_t run = 0;
  while (run < order.size()) {
    std::size_t end = run + 1;
    while (end < order.size() &&
           lifted_u(pts[order[end]], axis) == lifted_u(pts[order[run]], axis)) {
      ++end;
    }
    if (end - run > 1) {
      std::sort(order.begin() + static_cast<std::ptrdiff_t>(run),
                order.begin() + static_cast<std::ptrdiff_t>(end),
                [&](std::uint32_t a, std::uint32_t b) {
                  return lifted_w_compare(median, pts[a], pts[b]) > 0;
                });
      // Sorted descending? No: we want ascending w; lifted_w_compare(m,p,q)
      // returns sign(w(q) - w(p)), so "a before b" iff w(a) < w(b), i.e.
      // compare(m, a, b) > 0. (Kept explicit for clarity.)
    }
    run = end;
  }

  std::vector<std::uint32_t> h;
  h.reserve(16);
  for (const std::uint32_t i : order) {
    while (h.size() >= 2 &&
           lifted_turn(median, pts[h[h.size() - 2]], pts[h.back()], pts[i],
                       axis) <= 0) {
      h.pop_back();
    }
    h.push_back(i);
  }
  return h;
}

}  // namespace aero
