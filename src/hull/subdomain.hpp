#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "delaunay/triangulator.hpp"
#include "geom/bbox.hpp"
#include "geom/vec2.hpp"
#include "hull/lifted.hpp"

namespace aero {

/// One ancestor median-line cut of a subdomain.
struct Cut {
  CutAxis axis;    ///< orientation of the median line
  double line;     ///< its coordinate (x for kVertical, y for kHorizontal)
  bool keep_left;  ///< this subdomain is the left/below child of the cut
};

/// A piece of the boundary-layer point cloud produced by the
/// projection-based (Blelloch) decomposition.
///
/// Vertices are held twice, in x-sorted and y-sorted order, so that the
/// bounding box and the median vertex are available in constant time at
/// every split (the paper's Implementation section). Once a subdomain is
/// sufficiently decomposed the y-sorted copy is dropped: only the x-sorted
/// vertices are needed by the triangulator (and shipped to other processes).
///
/// A subdomain triangulates its points independently; the triangles whose
/// circumcenter falls on its side of every ancestor cut (see `cuts`) are
/// exactly its share of the global Delaunay triangulation -- the dividing
/// paths guarantee every such triangle has all three vertices present.
struct Subdomain {
  std::vector<Vec2> xsorted;  ///< vertices in LessXY order
  std::vector<Vec2> ysorted;  ///< vertices in LessYX order (empty once final)
  std::vector<Cut> cuts;      ///< ancestor cuts, root first
  int level = 0;              ///< decomposition depth
  bool final_ = false;        ///< sufficiently decomposed

  std::size_t size() const { return xsorted.size(); }

  /// Bounding box in O(1) from the two sorted arrays.
  BBox2 bbox() const;

  /// Work estimate: expected triangle count (~2n for a Delaunay point set).
  double cost() const { return 2.0 * static_cast<double>(xsorted.size()); }

  /// Drop the y-sorted copy (called when the subdomain becomes final).
  void finalize();
};

/// Controls when recursion stops (the paper's added coarse-partitioner
/// tolerances: vertex-count floor and recursion-depth cap, the latter set
/// from the process count).
struct DecomposeOptions {
  std::size_t min_points = 512;  ///< stop below this many vertices
  int max_level = 20;            ///< stop at this recursion depth
  /// Ablation hook: force every median line to one orientation instead of
  /// following the shortest bbox edge (-1 = adaptive, else CutAxis value).
  int force_axis = -1;
};

/// One split: compute the dividing Delaunay path through the median vertex
/// (median line perpendicular to the longest bbox extent), duplicate the
/// path vertices into both halves, and return the two children. The parent
/// is consumed; its primary sorted array is reused for the left child
/// exactly as the paper describes.
std::pair<Subdomain, Subdomain> split_subdomain(Subdomain&& parent,
                                                int force_axis = -1);

/// True if decomposition of `s` should stop under `opts`.
bool sufficiently_decomposed(const Subdomain& s, const DecomposeOptions& opts);

/// Recursively decompose `root` until every leaf is final. Sequential
/// reference implementation; the parallel runtime distributes the same
/// splits across ranks.
std::vector<Subdomain> decompose(Subdomain root, const DecomposeOptions& opts);

/// Triangulate a final subdomain (x-sorted fast path) and mark as `inside`
/// exactly the triangles this subdomain owns under the circumcenter rule.
/// The union of owned triangles over all leaves is the Delaunay
/// triangulation of the full point cloud, crack-free and overlap-free.
TriangulateResult triangulate_subdomain(const Subdomain& s);

/// Same contract, on the divide-and-conquer kernel with vertical cuts (the
/// Triangle configuration the paper selects for the over-decomposed leaves;
/// ~3x faster than the incremental kernel on pre-sorted points). Returns
/// only the OWNED triangles, as coordinate triples ready for the merge.
std::vector<std::array<Vec2, 3>> triangulate_subdomain_dc(const Subdomain& s);

/// True if this subdomain owns triangle (a, b, c) under its ancestor cuts.
bool owns_triangle(const Subdomain& s, Vec2 a, Vec2 b, Vec2 c);

/// Build the root subdomain from an arbitrary point cloud (deduplicated).
Subdomain make_root_subdomain(std::vector<Vec2> points);

}  // namespace aero
