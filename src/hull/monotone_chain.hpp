#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hull/lifted.hpp"

namespace aero {

/// Lower convex hull of a point set in the plane, by Andrew's monotone chain.
/// `pts` must be sorted lexicographically (x, then y). Returns indices of the
/// hull vertices in increasing-x order. Runs in linear time on sorted input:
/// each point is pushed once and popped at most once. Collinear points are
/// removed (minimal hull).
std::vector<std::uint32_t> lower_hull(std::span<const Vec2> pts);

/// Full convex hull (counter-clockwise, starting at the lexicographic
/// minimum) of `pts`, which must be sorted lexicographically. Collinear
/// boundary points are KEPT on the hull: downstream the hull polygon is used
/// as a conforming border of the boundary-layer triangulation, whose hull
/// edges stop at every collinear point.
std::vector<std::uint32_t> convex_hull_ccw(std::span<const Vec2> pts);

/// Lower convex hull of the *lifted* subdomain points: the dividing Delaunay
/// path of the projection-based decomposition.
///
/// `pts` must be sorted by the u-coordinate for `axis` (y for a vertical
/// median line, x for a horizontal one); ties in u are reordered internally
/// by exact lifted w. `median` is the median vertex the paraboloid is
/// centered on. Returns indices into `pts` of the path vertices in u order.
/// All turn decisions use exact arithmetic: the returned chain consists of
/// true Delaunay edges of the point set.
std::vector<std::uint32_t> lifted_lower_hull(std::span<const Vec2> pts,
                                             Vec2 median, CutAxis axis);

}  // namespace aero
