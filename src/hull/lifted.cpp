#include "hull/lifted.hpp"

#include <cmath>
#include <limits>

#include "geom/expansion.hpp"

namespace aero {

namespace {

using namespace aero::expansion;

constexpr double kEps = std::numeric_limits<double>::epsilon() / 2.0;
// Conservative forward error coefficient for the filtered evaluation below
// (a handful of multiplies and adds; the exact fallback makes looseness
// harmless).
constexpr double kFilterCoeff = 64.0 * kEps;

/// Exact expansion for w(p) = (p - m) . (p - m). Writes <= 16 components
/// into `out`; returns the count.
int lift_w(Vec2 m, Vec2 p, double* out) {
  double dx[2], dy[2];
  two_diff(p.x, m.x, dx[1], dx[0]);
  two_diff(p.y, m.y, dy[1], dy[0]);

  double tx1[4], tx2[4], x2[8];
  const int lx1 = scale_expansion_zeroelim(2, dx, dx[1], tx1);
  const int lx2 = scale_expansion_zeroelim(2, dx, dx[0], tx2);
  const int lxx = fast_expansion_sum_zeroelim(lx1, tx1, lx2, tx2, x2);

  double ty1[4], ty2[4], y2[8];
  const int ly1 = scale_expansion_zeroelim(2, dy, dy[1], ty1);
  const int ly2 = scale_expansion_zeroelim(2, dy, dy[0], ty2);
  const int lyy = fast_expansion_sum_zeroelim(ly1, ty1, ly2, ty2, y2);

  return fast_expansion_sum_zeroelim(lxx, x2, lyy, y2, out);
}

/// out = e - f (expansion difference); returns component count.
int expansion_diff(int elen, const double* e, int flen, const double* f,
                   double* out) {
  double negf[16];
  for (int i = 0; i < flen; ++i) negf[i] = -f[i];
  return fast_expansion_sum_zeroelim(elen, e, flen, negf, out);
}

/// out = (2-component a) * (expansion e); returns component count.
/// `out` must hold 4 * elen doubles.
int mul2_expansion(const double a[2], int elen, const double* e, double* out,
                   double* scratch) {
  const int l1 = scale_expansion_zeroelim(elen, e, a[1], scratch);
  double* s2 = scratch + 2 * elen;
  const int l2 = scale_expansion_zeroelim(elen, e, a[0], s2);
  return fast_expansion_sum_zeroelim(l1, scratch, l2, s2, out);
}

}  // namespace

int lifted_w_compare(Vec2 m, Vec2 p, Vec2 q) {
  // Filter.
  const double wp = (p - m).norm2();
  const double wq = (q - m).norm2();
  const double diff = wq - wp;
  const double err = kFilterCoeff * (wq + wp);
  if (diff > err) return 1;
  if (diff < -err) return -1;

  double ep[16], eq[16], d[32];
  const int lp = lift_w(m, p, ep);
  const int lq = lift_w(m, q, eq);
  const int ld = expansion_diff(lq, eq, lp, ep, d);
  return sign(ld, d);
}

int circumcenter_side(Vec2 a, Vec2 b, Vec2 c, CutAxis axis, double line) {
  // For a vertical line x == l:
  //   cc.x - l = (a.x - l) + (ac.y*|ab|^2 - ab.y*|ac|^2) / (2 ab x ac)
  // so sign(cc.x - l) = sign((a.x-l)*d + ac.y*|ab|^2 - ab.y*|ac|^2) * sign(d)
  // with d = 2 (ab x ac). The horizontal case swaps the roles of x and y
  // (with the complementary sign structure). All computed exactly.
  const bool v = axis == CutAxis::kVertical;

  // Filter.
  {
    const Vec2 ab = b - a;
    const Vec2 ac = c - a;
    const double d = 2.0 * ab.cross(ac);
    const double ab2 = ab.norm2();
    const double ac2 = ac.norm2();
    const double e = (v ? a.x : a.y) - line;
    const double num = v ? (e * d + ac.y * ab2 - ab.y * ac2)
                         : (e * d + ab.x * ac2 - ac.x * ab2);
    const double perm = std::fabs(e * d) +
                        (v ? std::fabs(ac.y) : std::fabs(ac.x)) * ab2 +
                        (v ? std::fabs(ab.y) : std::fabs(ab.x)) * ac2;
    const double err = 128.0 * kEps * perm;
    if (num > err) return d > 0.0 ? 1 : -1;
    if (num < -err) return d > 0.0 ? -1 : 1;
    // fall through to exact (also covers |d| itself being unreliable; the
    // exact path recomputes everything including the orientation sign)
  }

  double abx[2], aby[2], acx[2], acy[2], e2[2];
  two_diff(b.x, a.x, abx[1], abx[0]);
  two_diff(b.y, a.y, aby[1], aby[0]);
  two_diff(c.x, a.x, acx[1], acx[0]);
  two_diff(c.y, a.y, acy[1], acy[0]);
  two_diff(v ? a.x : a.y, line, e2[1], e2[0]);

  double scratch[64];
  // d = 2 (abx*acy - aby*acx)
  double t1[8], t2[8], d16[16];
  const int lt1 = mul2_expansion(abx, 2, acy, t1, scratch);
  const int lt2 = mul2_expansion(aby, 2, acx, t2, scratch);
  for (int i = 0; i < lt2; ++i) t2[i] = -t2[i];
  int ld = fast_expansion_sum_zeroelim(lt1, t1, lt2, t2, d16);
  for (int i = 0; i < ld; ++i) d16[i] *= 2.0;  // exact: power-of-two scale
  const int dsign = sign(ld, d16);
  if (dsign == 0) return 0;  // degenerate triangle; caller filters

  // ab2 = abx^2 + aby^2, ac2 likewise.
  double sq1[8], sq2[8], ab2e[16], ac2e[16];
  int l1 = mul2_expansion(abx, 2, abx, sq1, scratch);
  int l2 = mul2_expansion(aby, 2, aby, sq2, scratch);
  const int lab2 = fast_expansion_sum_zeroelim(l1, sq1, l2, sq2, ab2e);
  l1 = mul2_expansion(acx, 2, acx, sq1, scratch);
  l2 = mul2_expansion(acy, 2, acy, sq2, scratch);
  const int lac2 = fast_expansion_sum_zeroelim(l1, sq1, l2, sq2, ac2e);

  double scratch2[128];
  double term1[64], term2[64], term3[64];
  const int lt1b = mul2_expansion(e2, ld, d16, term1, scratch2);
  int lt2b, lt3b;
  if (v) {
    lt2b = mul2_expansion(acy, lab2, ab2e, term2, scratch2);
    lt3b = mul2_expansion(aby, lac2, ac2e, term3, scratch2);
  } else {
    lt2b = mul2_expansion(abx, lac2, ac2e, term2, scratch2);
    lt3b = mul2_expansion(acx, lab2, ab2e, term3, scratch2);
  }
  for (int i = 0; i < lt3b; ++i) term3[i] = -term3[i];
  double s12[128], num[192];
  const int ls12 = fast_expansion_sum_zeroelim(lt1b, term1, lt2b, term2, s12);
  const int lnum = fast_expansion_sum_zeroelim(ls12, s12, lt3b, term3, num);
  return sign(lnum, num) * dsign;
}

int lifted_turn(Vec2 m, Vec2 p, Vec2 q, Vec2 r, CutAxis axis) {
  const double up = lifted_u(p, axis);
  const double uq = lifted_u(q, axis);
  const double ur = lifted_u(r, axis);

  // Filtered evaluation.
  const double wp = (p - m).norm2();
  const double wq = (q - m).norm2();
  const double wr = (r - m).norm2();
  const double duq = uq - up;
  const double dur = ur - up;
  const double det = duq * (wr - wp) - dur * (wq - wp);
  const double permanent =
      std::fabs(duq) * (std::fabs(wr) + std::fabs(wp)) +
      std::fabs(dur) * (std::fabs(wq) + std::fabs(wp));
  const double errbound = kFilterCoeff * permanent;
  if (det > errbound) return 1;
  if (det < -errbound) return -1;

  // Exact evaluation.
  double ewp[16], ewq[16], ewr[16];
  const int lwp = lift_w(m, p, ewp);
  const int lwq = lift_w(m, q, ewq);
  const int lwr = lift_w(m, r, ewr);

  double dwq[32], dwr[32];
  const int ldwq = expansion_diff(lwq, ewq, lwp, ewp, dwq);
  const int ldwr = expansion_diff(lwr, ewr, lwp, ewp, dwr);

  double eduq[2], edur[2];
  two_diff(uq, up, eduq[1], eduq[0]);
  two_diff(ur, up, edur[1], edur[0]);

  double term1[128], term2[128], scratch[128];
  const int lt1 = mul2_expansion(eduq, ldwr, dwr, term1, scratch);
  const int lt2 = mul2_expansion(edur, ldwq, dwq, term2, scratch);

  double cross[256];
  for (int i = 0; i < lt2; ++i) term2[i] = -term2[i];
  const int lc = fast_expansion_sum_zeroelim(lt1, term1, lt2, term2, cross);
  return sign(lc, cross);
}

}  // namespace aero
