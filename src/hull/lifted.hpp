#pragma once

#include "geom/vec2.hpp"

namespace aero {

/// Orientation of the median line used by a decomposition split.
/// kVertical = median line x == const (cut of the x-extent, paper's "cut axis
/// parallel to the y-axis"); kHorizontal = median line y == const.
enum class CutAxis { kVertical, kHorizontal };

/// The projection-based decomposition lifts every point p of a subdomain to
///   ( u(p), w(p) ) = ( secondary coordinate, |p - m|^2 )
/// where m is the median vertex: the paraboloid centered at the median
/// vertex, flattened onto the vertical plane through the median line. The
/// lower convex hull of the lifted points is the dividing Delaunay path
/// (Blelloch et al. 1996). Both predicates below are exact (floating-point
/// filter + expansion arithmetic): the path must consist of true Delaunay
/// edges or the independently triangulated subdomains would not conform.

/// u-coordinate of the flattening for the given median-line orientation.
inline double lifted_u(Vec2 p, CutAxis axis) {
  return axis == CutAxis::kVertical ? p.y : p.x;
}

/// Sign of the turn p -> q -> r in lifted space: +1 left (counter-clockwise),
/// -1 right, 0 collinear (three points on a circle centered on the median
/// line). Points' u-coordinates must be used consistently with `axis`.
int lifted_turn(Vec2 m, Vec2 p, Vec2 q, Vec2 r, CutAxis axis);

/// Sign of w(q) - w(p): compares squared distances to the median vertex
/// exactly. Used to order equal-u runs before the hull scan.
int lifted_w_compare(Vec2 m, Vec2 p, Vec2 q);

/// Exact side of the circumcenter of triangle (a, b, c) relative to the
/// median line (x == line for kVertical, y == line for kHorizontal):
/// -1 = left/below, 0 = exactly on the line, +1 = right/above.
///
/// This is the Blelloch partition criterion: a subdomain's Delaunay
/// triangulation keeps exactly the triangles whose circumcenter falls on its
/// side of every ancestor median line (ties broken to the left/below side,
/// identically in all subdomains, so degenerate triangles are kept exactly
/// once). The triangle may have either orientation.
int circumcenter_side(Vec2 a, Vec2 b, Vec2 c, CutAxis axis, double line);

}  // namespace aero
