#include "hull/subdomain.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "delaunay/quadedge.hpp"
#include "hull/monotone_chain.hpp"

namespace aero {

BBox2 Subdomain::bbox() const {
  assert(!xsorted.empty() && !ysorted.empty());
  return BBox2{{xsorted.front().x, ysorted.front().y},
               {xsorted.back().x, ysorted.back().y}};
}

void Subdomain::finalize() {
  final_ = true;
  ysorted.clear();
  ysorted.shrink_to_fit();
}

bool sufficiently_decomposed(const Subdomain& s, const DecomposeOptions& opts) {
  if (s.size() < std::max<std::size_t>(opts.min_points, 4)) return true;
  if (s.level >= opts.max_level) return true;
  const BBox2 box = s.bbox();
  if (box.width() == 0.0 && box.height() == 0.0) return true;  // degenerate
  return false;
}

std::pair<Subdomain, Subdomain> split_subdomain(Subdomain&& parent,
                                                int force_axis) {
  const std::size_t n = parent.size();
  assert(n >= 4);
  const BBox2 box = parent.bbox();
  // Median line perpendicular to the longest bbox extent, i.e. the cut axis
  // is parallel to the shortest bbox edge: avoids long, skinny subdomains,
  // which are more expensive to triangulate. force_axis overrides (ablation).
  const CutAxis axis =
      force_axis >= 0 ? static_cast<CutAxis>(force_axis)
      : box.width() >= box.height() ? CutAxis::kVertical
                                    : CutAxis::kHorizontal;
  const bool vertical = axis == CutAxis::kVertical;
  const std::vector<Vec2>& primary = vertical ? parent.xsorted : parent.ysorted;
  const std::vector<Vec2>& secondary =
      vertical ? parent.ysorted : parent.xsorted;
  const std::size_t mid = n / 2;
  const Vec2 median = primary[mid];
  const double line = vertical ? median.x : median.y;

  // "p belongs to the left/below child" — identical to "p precedes the
  // median vertex in the primary sort", so the primary array can be split by
  // a low-level copy at the median index.
  const auto in_left = [&](Vec2 p) {
    return vertical ? LessXY{}(p, median) : LessYX{}(p, median);
  };

  // --- Dividing Delaunay path -------------------------------------------
  std::vector<std::uint32_t> hull = lifted_lower_hull(secondary, median, axis);
  // A trailing chain edge between two equal-u points is an artifact of the
  // tie (a "vertical" lifted edge certifies no empty circle): the true path
  // terminates at the first (minimum-w) point of the final equal-u run.
  while (hull.size() >= 2 &&
         lifted_u(secondary[hull[hull.size() - 2]], axis) ==
             lifted_u(secondary[hull.back()], axis)) {
    hull.pop_back();
  }

  // Points lying exactly on a chain edge in lifted space (cocircular about a
  // median-line-centered circle) are hull points too and must be shared, or
  // the two children could resolve the degenerate neighborhood differently.
  std::vector<std::uint8_t> is_path(n, 0);
  for (const std::uint32_t h : hull) is_path[h] = 1;
  {
    std::size_t k = 0;  // current chain segment (hull[k], hull[k+1])
    for (std::uint32_t i = 0; i < n; ++i) {
      if (is_path[i]) continue;
      const double ui = lifted_u(secondary[i], axis);
      while (k + 2 < hull.size() &&
             lifted_u(secondary[hull[k + 1]], axis) < ui) {
        ++k;
      }
      for (std::size_t seg = k;
           seg + 1 < hull.size() && lifted_u(secondary[hull[seg]], axis) <= ui;
           ++seg) {
        const Vec2 a = secondary[hull[seg]];
        const Vec2 b = secondary[hull[seg + 1]];
        if (lifted_u(b, axis) < ui) continue;
        // Same-u as an endpoint means coincident or off the open segment.
        if (lifted_u(a, axis) == ui || lifted_u(b, axis) == ui) continue;
        if (lifted_turn(median, a, secondary[i], b, axis) != 0) continue;
        is_path[i] = 1;
        break;
      }
    }
  }

  std::unordered_set<Vec2, Vec2Hash> path_set;
  path_set.reserve(2 * hull.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (is_path[i]) path_set.insert(secondary[i]);
  }

  // --- Build the children -------------------------------------------------
  Subdomain left, right;
  left.level = right.level = parent.level + 1;
  left.cuts = parent.cuts;
  left.cuts.push_back({axis, line, true});
  right.cuts = parent.cuts;
  right.cuts.push_back({axis, line, false});

  // Path vertices that live in the other half, sorted for the primary order.
  // Collected by index scan (not by iterating path_set, whose hash order
  // varies); `secondary` is sorted, so duplicates are adjacent and one
  // std::unique pass reproduces the set's dedup exactly.
  std::vector<Vec2> path_pts;
  path_pts.reserve(path_set.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (is_path[i]) path_pts.push_back(secondary[i]);
  }
  path_pts.erase(std::unique(path_pts.begin(), path_pts.end()),
                 path_pts.end());
  std::vector<Vec2> path_in_left, path_in_right;
  for (const Vec2 p : path_pts) {
    (in_left(p) ? path_in_left : path_in_right).push_back(p);
  }
  const auto primary_less = [&](Vec2 a, Vec2 b) {
    return vertical ? LessXY{}(a, b) : LessYX{}(a, b);
  };
  std::sort(path_in_left.begin(), path_in_left.end(), primary_less);
  std::sort(path_in_right.begin(), path_in_right.end(), primary_less);

  // Secondary-sorted arrays: one stable pass keeps both children sorted;
  // path vertices are emitted to both sides.
  std::vector<Vec2> left_secondary, right_secondary;
  left_secondary.reserve(mid + path_set.size());
  right_secondary.reserve(n - mid + path_set.size());
  for (const Vec2 p : secondary) {
    const bool shared = path_set.contains(p);
    if (in_left(p)) {
      left_secondary.push_back(p);
      if (shared) right_secondary.push_back(p);
    } else {
      right_secondary.push_back(p);
      if (shared) left_secondary.push_back(p);
    }
  }

  // Primary-sorted arrays, with the paper's storage trick: the left child
  // reuses the parent's array truncated at the median index with the
  // right-half path copies appended (all of which sort after the median);
  // the right child takes the left-half path copies followed by the tail.
  std::vector<Vec2> right_primary;
  right_primary.reserve(n - mid + path_in_left.size());
  right_primary.insert(right_primary.end(), path_in_left.begin(),
                       path_in_left.end());
  right_primary.insert(right_primary.end(),
                       primary.begin() + static_cast<std::ptrdiff_t>(mid),
                       primary.end());

  std::vector<Vec2> left_primary =
      std::move(vertical ? parent.xsorted : parent.ysorted);
  left_primary.resize(mid);
  left_primary.insert(left_primary.end(), path_in_right.begin(),
                      path_in_right.end());

  if (vertical) {
    left.xsorted = std::move(left_primary);
    left.ysorted = std::move(left_secondary);
    right.xsorted = std::move(right_primary);
    right.ysorted = std::move(right_secondary);
  } else {
    left.ysorted = std::move(left_primary);
    left.xsorted = std::move(left_secondary);
    right.ysorted = std::move(right_primary);
    right.xsorted = std::move(right_secondary);
  }

  return {std::move(left), std::move(right)};
}

std::vector<Subdomain> decompose(Subdomain root, const DecomposeOptions& opts) {
  std::vector<Subdomain> leaves;
  std::vector<Subdomain> stack;
  stack.push_back(std::move(root));
  while (!stack.empty()) {
    Subdomain s = std::move(stack.back());
    stack.pop_back();
    if (sufficiently_decomposed(s, opts)) {
      s.finalize();
      leaves.push_back(std::move(s));
      continue;
    }
    const std::size_t parent_size = s.size();
    auto [l, r] = split_subdomain(std::move(s), opts.force_axis);
    if (l.size() >= parent_size || r.size() >= parent_size) {
      // Degenerate geometry (e.g. all points collinear): the split cannot
      // make progress; keep the piece whole.
      Subdomain whole = l.size() >= parent_size ? std::move(l) : std::move(r);
      whole.level -= 1;
      whole.cuts.pop_back();
      whole.finalize();
      leaves.push_back(std::move(whole));
      continue;
    }
    stack.push_back(std::move(l));
    stack.push_back(std::move(r));
  }
  return leaves;
}

bool owns_triangle(const Subdomain& s, Vec2 a, Vec2 b, Vec2 c) {
  for (const Cut& cut : s.cuts) {
    // Ties (circumcenter exactly on a median line) go to the left/below
    // child -- the same rule in every subdomain, so each degenerate triangle
    // is owned exactly once.
    const int side = circumcenter_side(a, b, c, cut.axis, cut.line);
    if ((side <= 0) != cut.keep_left) return false;
  }
  return true;
}

TriangulateResult triangulate_subdomain(const Subdomain& s) {
  TriangulateResult result = triangulate_points(s.xsorted,
                                                /*assume_sorted=*/true);
  DelaunayMesh& mesh = result.mesh;
  mesh.for_each_triangle([&](TriIndex t) {
    const MeshTri& mt = mesh.tri(t);
    const bool owned = owns_triangle(s, mesh.point(mt.v[0]),
                                     mesh.point(mt.v[1]), mesh.point(mt.v[2]));
    mesh.set_inside(t, owned);
  });
  return result;
}

std::vector<std::array<Vec2, 3>> triangulate_subdomain_dc(
    const Subdomain& s) {
  std::vector<std::array<Vec2, 3>> owned;
  const std::vector<Vec2>& pts = s.xsorted;
  if (pts.size() < 3) return owned;
  for (const auto& t : dc_delaunay(pts)) {
    const Vec2 a = pts[static_cast<std::size_t>(t[0])];
    const Vec2 b = pts[static_cast<std::size_t>(t[1])];
    const Vec2 c = pts[static_cast<std::size_t>(t[2])];
    if (owns_triangle(s, a, b, c)) owned.push_back({a, b, c});
  }
  return owned;
}

Subdomain make_root_subdomain(std::vector<Vec2> points) {
  Subdomain s;
  s.xsorted = std::move(points);
  std::sort(s.xsorted.begin(), s.xsorted.end(), LessXY{});
  s.xsorted.erase(std::unique(s.xsorted.begin(), s.xsorted.end()),
                  s.xsorted.end());
  s.ysorted = s.xsorted;
  std::sort(s.ysorted.begin(), s.ysorted.end(), LessYX{});
  return s;
}

}  // namespace aero
