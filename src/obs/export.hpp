#pragma once

// Exporters of the observability subsystem: the Chrome trace_event JSON
// (open chrome://tracing or https://ui.perfetto.dev and load the file) and a
// machine-readable metrics.json with the per-rank load-balance report.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aero::obs {

/// One row of the per-rank load-balance report (built from PoolStats by the
/// runtime; obs only defines the shape so the exporter stays at the bottom
/// of the layering).
struct RankLoad {
  int rank = 0;
  double busy_seconds = 0.0;   ///< mesher thread time spent expanding units
  double comm_seconds = 0.0;   ///< communicator time spent on protocol work
  double idle_seconds = 0.0;   ///< wall minus busy minus comm, clamped at 0
  std::uint64_t units = 0;     ///< work units expanded on this rank
  std::uint64_t donated = 0;   ///< work transfers sent to other ranks
  std::uint64_t received = 0;  ///< work transfers accepted from other ranks
  std::uint64_t retransmits = 0;  ///< unacked payloads this rank re-sent
};

/// Chrome trace_event JSON ("X" complete spans, "i" instants, "M" thread and
/// process names; pid = rank + 1 so rank-tagged threads group per rank and
/// host threads land in pid 0). Timestamps in microseconds since the
/// recorder epoch.
void write_chrome_trace(const TraceRecorder::Snapshot& snap,
                        std::ostream& out);
/// Convenience file wrapper; returns false when the file cannot be written.
bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path);

/// metrics.json: every registered counter/gauge/histogram plus the per-rank
/// load-balance table (empty for sequential runs).
void write_metrics_json(const MetricsRegistry::Snapshot& snap,
                        const std::vector<RankLoad>& ranks,
                        std::ostream& out);
bool write_metrics_json(const MetricsRegistry& registry,
                        const std::vector<RankLoad>& ranks,
                        const std::string& path);

/// Escape a string for inclusion in a JSON string literal (quotes excluded).
std::string json_escape(const std::string& s);

}  // namespace aero::obs
