#include "obs/trace.hpp"

namespace aero::obs {

namespace {

/// Per-thread cached registration: valid while the recorder generation
/// matches (reset() bumps the generation to orphan stale caches without
/// touching other threads).
struct LocalCache {
  ThreadBuffer* buffer = nullptr;
  std::uint64_t generation = ~0ull;
};

thread_local LocalCache t_cache;

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_capacity(std::size_t events_per_thread) {
  capacity_.store(events_per_thread > 0 ? events_per_thread : 1,
                  std::memory_order_relaxed);
}

ThreadBuffer& TraceRecorder::local() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_cache.buffer != nullptr && t_cache.generation == gen) {
    return *t_cache.buffer;
  }
  MutexLock lock(m_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      static_cast<std::uint32_t>(buffers_.size()), capacity()));
  t_cache.buffer = buffers_.back().get();
  t_cache.generation = gen;
  return *t_cache.buffer;
}

void TraceRecorder::tag_thread(const char* name, int rank) {
  if (!enabled()) return;
  ThreadBuffer& buf = local();
  buf.set_name(name);
  buf.set_rank(rank);
}

TraceRecorder::Snapshot TraceRecorder::snapshot() const {
  Snapshot snap;
  MutexLock lock(m_);
  snap.threads.reserve(buffers_.size());
  for (const auto& buf : buffers_) {
    Snapshot::Thread t;
    t.tid = buf->tid();
    t.name = buf->name();
    t.rank = buf->rank();
    t.dropped = buf->dropped();
    const std::size_t n = buf->size();
    t.events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) t.events.push_back(buf->event(i));
    snap.total_dropped += t.dropped;
    snap.threads.push_back(std::move(t));
  }
  return snap;
}

std::uint64_t TraceRecorder::total_dropped() const {
  MutexLock lock(m_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->dropped();
  return total;
}

void TraceRecorder::reset() {
  MutexLock lock(m_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  buffers_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void apply(const TraceConfig& cfg) {
  if (!cfg.enabled) return;
  TraceRecorder& r = TraceRecorder::global();
  r.set_capacity(cfg.events_per_thread);
  r.set_enabled(true);
}

void instant(const char* category, const char* name, std::uint64_t arg) {
  TraceRecorder& r = TraceRecorder::global();
  if (r.enabled()) r.instant(category, name, arg);
}

void tag_thread(const char* name, int rank) {
  TraceRecorder::global().tag_thread(name, rank);
}

}  // namespace aero::obs
