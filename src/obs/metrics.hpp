#pragma once

// Named counters, gauges, and histograms for the mesher. All instruments are
// plain atomics, so recording from the pool's mesher/communicator/monitor
// threads is TSan-clean and wait-free; registration (name -> instrument) is
// the only locked operation and is meant to happen once per call site, on
// the cold path. Snapshots feed the metrics.json exporter (obs/export.hpp).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/annotations.hpp"

namespace aero::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_ AERO_ATOMIC_ROLE(counter){0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_ AERO_ATOMIC_ROLE(flag, relaxed){0.0};
};

/// Log2-binned histogram of non-negative samples: bin 0 holds [0, 1), bin i
/// holds [2^(i-1), 2^i), the last bin is open-ended. Coarse by design --
/// enough to see latency shape without per-sample allocation.
class Histogram {
 public:
  static constexpr std::size_t kBins = 32;

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bin(std::size_t i) const {
    return bins_[i].load(std::memory_order_relaxed);
  }
  /// Exclusive upper edge of bin i (last bin: +inf).
  static double bin_upper_edge(std::size_t i);

 private:
  std::atomic<std::uint64_t> bins_[kBins] AERO_ATOMIC_ROLE(counter) = {};
  std::atomic<std::uint64_t> count_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<double> sum_ AERO_ATOMIC_ROLE(counter){0.0};
};

/// Process-wide instrument registry. Lookups lock; cache the returned
/// reference at hot call sites (instruments live as long as the registry and
/// are never invalidated by later registrations).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    struct Hist {
      std::string name;
      std::uint64_t count = 0;
      double sum = 0.0;
      std::vector<std::pair<double, std::uint64_t>> bins;  ///< (upper, count)
    };
    std::vector<Hist> histograms;
  };
  /// Name-sorted copy of every instrument's current value.
  Snapshot snapshot() const;

  /// Drop every instrument (tests; references from before are invalidated).
  void reset();

 private:
  mutable Mutex m_ AERO_LOCK_NAME("obs.metrics", 110);
  std::map<std::string, std::unique_ptr<Counter>> counters_
      AERO_GUARDED_BY(m_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ AERO_GUARDED_BY(m_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      AERO_GUARDED_BY(m_);
};

}  // namespace aero::obs
