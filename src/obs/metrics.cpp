#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

namespace aero::obs {

void Histogram::observe(double v) {
  if (!(v >= 0.0)) v = 0.0;  // negatives and NaN clamp into bin 0
  std::size_t bin = 0;
  if (v >= 1.0) {
    // bin i holds [2^(i-1), 2^i): ilogb(v) is floor(log2 v) for finite v.
    const int e = std::ilogb(v);
    bin = static_cast<std::size_t>(e) + 1;
    if (bin >= kBins) bin = kBins - 1;
  }
  bins_[bin].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::bin_upper_edge(std::size_t i) {
  if (i + 1 >= kBins) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  MutexLock lock(m_);
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::Hist out;
    out.name = name;
    out.count = h->count();
    out.sum = h->sum();
    for (std::size_t i = 0; i < Histogram::kBins; ++i) {
      const std::uint64_t n = h->bin(i);
      if (n > 0) out.bins.emplace_back(Histogram::bin_upper_edge(i), n);
    }
    snap.histograms.push_back(std::move(out));
  }
  return snap;
}

void MetricsRegistry::reset() {
  MutexLock lock(m_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace aero::obs
