#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>

namespace aero::obs {

namespace {

/// Microseconds with sub-ns resolution preserved (Chrome's ts unit).
double us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

/// JSON number from a double; JSON has no Infinity/NaN, map those to null.
void put_number(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    const long long as_int = static_cast<long long>(v);
    if (static_cast<double>(as_int) == v) {
      out << as_int;
    } else {
      const auto flags = out.flags();
      const auto prec = out.precision();
      out.precision(9);
      out << v;
      out.precision(prec);
      out.flags(flags);
    }
  } else {
    out << "null";
  }
}

int pid_of(int rank) { return rank + 1; }  // rank -1 (host threads) -> pid 0

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(const TraceRecorder::Snapshot& snap,
                        std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":\""
      << snap.total_dropped << "\"},\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata: one process_name per distinct pid, one thread_name per thread.
  std::set<int> pids;
  for (const auto& t : snap.threads) pids.insert(pid_of(t.rank));
  for (const int pid : pids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    if (pid == 0) {
      out << "host";
    } else {
      out << "rank " << (pid - 1);
    }
    out << "\"}}";
  }
  for (const auto& t : snap.threads) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid_of(t.rank) << ",\"tid\":" << t.tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(t.name) << "\"}}";
  }

  for (const auto& t : snap.threads) {
    for (const TraceEvent& e : t.events) {
      sep();
      out << "{\"ph\":\"" << (e.kind == TraceEvent::Kind::kSpan ? "X" : "i")
          << "\",\"pid\":" << pid_of(t.rank) << ",\"tid\":" << t.tid
          << ",\"ts\":";
      put_number(out, us(e.start_ns));
      if (e.kind == TraceEvent::Kind::kSpan) {
        out << ",\"dur\":";
        put_number(out, us(e.duration_ns));
      } else {
        out << ",\"s\":\"t\"";
      }
      out << ",\"cat\":\"" << json_escape(e.category ? e.category : "")
          << "\",\"name\":\"" << json_escape(e.name ? e.name : "") << "\"";
      if (e.arg != 0) {
        out << ",\"args\":{\"arg\":" << e.arg << "}";
      }
      out << "}";
    }
  }
  out << "\n]}\n";
}

bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(recorder.snapshot(), out);
  return static_cast<bool>(out);
}

void write_metrics_json(const MetricsRegistry::Snapshot& snap,
                        const std::vector<RankLoad>& ranks,
                        std::ostream& out) {
  out << "{\n\"schema\":\"aeromesh.metrics.v1\",\n";

  out << "\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n\"" << json_escape(snap.counters[i].first)
        << "\":" << snap.counters[i].second;
  }
  out << "\n},\n";

  out << "\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n\"" << json_escape(snap.gauges[i].first) << "\":";
    put_number(out, snap.gauges[i].second);
  }
  out << "\n},\n";

  out << "\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i > 0) out << ",";
    out << "\n\"" << json_escape(h.name) << "\":{\"count\":" << h.count
        << ",\"sum\":";
    put_number(out, h.sum);
    out << ",\"bins\":[";
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      if (b > 0) out << ",";
      out << "[";
      put_number(out, h.bins[b].first);  // open-ended last bin -> null
      out << "," << h.bins[b].second << "]";
    }
    out << "]}";
  }
  out << "\n},\n";

  out << "\"load_balance\":[";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankLoad& r = ranks[i];
    if (i > 0) out << ",";
    out << "\n{\"rank\":" << r.rank << ",\"busy_s\":";
    put_number(out, r.busy_seconds);
    out << ",\"comm_s\":";
    put_number(out, r.comm_seconds);
    out << ",\"idle_s\":";
    put_number(out, r.idle_seconds);
    out << ",\"units\":" << r.units << ",\"donated\":" << r.donated
        << ",\"received\":" << r.received
        << ",\"retransmits\":" << r.retransmits << "}";
  }
  out << "\n]\n}\n";
}

bool write_metrics_json(const MetricsRegistry& registry,
                        const std::vector<RankLoad>& ranks,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(registry.snapshot(), ranks, out);
  return static_cast<bool>(out);
}

}  // namespace aero::obs
