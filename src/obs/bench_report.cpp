#include "obs/bench_report.hpp"

#include <fstream>

#include "obs/export.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace aero::obs {

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // macOS reports bytes
#else
  return usage.ru_maxrss;  // Linux reports kB
#endif
#else
  return 0;
#endif
}

bool write_bench_json(const BenchReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(9);
  out << "{\"bench\":\"" << json_escape(report.bench) << "\",\"case\":\""
      << json_escape(report.case_name) << "\",\"ranks\":" << report.ranks
      << ",\"wall_ms\":" << report.wall_ms
      << ",\"peak_rss_kb\":" << peak_rss_kb() << ",\"counters\":{";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n\"" << json_escape(report.counters[i].first)
        << "\":" << report.counters[i].second;
  }
  out << "\n}}\n";
  return static_cast<bool>(out);
}

}  // namespace aero::obs
