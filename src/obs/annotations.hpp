#pragma once

// Clang thread-safety annotations for the mesher/communicator lock protocol.
//
// The runtime's correctness rests on a discipline the compiler cannot see by
// default: every mailbox queue, RMA window buffer, and rank work queue is
// guarded by a specific mutex, and the mesher/communicator/monitor threads
// must hold it across every access. These macros make that discipline part
// of the type system under Clang's -Wthread-safety analysis (enabled by the
// AERO_ANALYZE=ON CMake option); under GCC and unanalyzed Clang builds they
// expand to nothing, so the annotated code is identical to the plain code.
//
// Lives in src/obs (the bottom-most module) so that the observability
// recorder and every concurrent layer above it share one lock vocabulary
// without upward include edges.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define AERO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AERO_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (lockable resource) named `x`.
#define AERO_CAPABILITY(x) AERO_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime equals a capability hold.
#define AERO_SCOPED_CAPABILITY AERO_THREAD_ANNOTATION(scoped_lockable)

/// The annotated member may only be accessed while holding capability `x`.
#define AERO_GUARDED_BY(x) AERO_THREAD_ANNOTATION(guarded_by(x))

/// The annotated pointer may only be dereferenced while holding `x`.
#define AERO_PT_GUARDED_BY(x) AERO_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function requires the listed capabilities to be held on
/// entry (and does not release them).
#define AERO_REQUIRES(...) \
  AERO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities.
#define AERO_ACQUIRE(...) \
  AERO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities.
#define AERO_RELEASE(...) \
  AERO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns `r`.
#define AERO_TRY_ACQUIRE(r, ...) \
  AERO_THREAD_ANNOTATION(try_acquire_capability(r, __VA_ARGS__))

/// The annotated function must NOT be called with the capabilities held
/// (deadlock guard for self-locking helpers).
#define AERO_EXCLUDES(...) \
  AERO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Opts one function out of the analysis. Reserved for the few places the
/// analysis cannot model -- in this codebase, only condition-variable waits
/// (the mid-wait release/reacquire cycle is invisible to the checker).
#define AERO_NO_THREAD_SAFETY_ANALYSIS \
  AERO_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// aerolint v2 annotations. These expand to NOTHING for every compiler: they
// are parsed textually by tools/aerolint's declaration model, which enforces
// them whole-program (Clang's analysis is per-TU and order-blind). Keep the
// lock-rank table in DESIGN.md ("Static analysis v2") in sync.

/// Names and ranks a mutex member for the lock-order analysis:
///   Mutex m_ AERO_LOCK_NAME("pool.rank", 10);
/// Nested acquisitions must follow ascending rank. The optional third
/// argument `may_block` marks a lock whose purpose is to serialize a
/// blocking operation (the journal's fwrite mutex), exempting it from the
/// lock-blocking rule.
#define AERO_LOCK_NAME(...)

/// Declares ordering intent explicitly; aerolint checks it against the
/// ranks and adds the edge to the exported acquisition graph:
///   Mutex m_ AERO_LOCK_NAME("pool.rank", 10) AERO_ACQUIRED_BEFORE("io.journal");
#define AERO_ACQUIRED_BEFORE(...)

/// Declares a std::atomic member's role for the atomics audit:
///   std::atomic<std::size_t> hits_ AERO_ATOMIC_ROLE(counter);
/// Roles: counter (statistics, any order), flag (state bits; relaxed only
/// with the `relaxed` qualifier), published (release/acquire data handoff).
#define AERO_ATOMIC_ROLE(...)

/// Declares shared mutable state in the Delaunay/geometry kernel modules
/// and names its synchronization discipline for the kernel-shared-state
/// audit:
///   mutable TriIndex last_tri_ AERO_SHARED_STATE("main thread only");
/// The audit (tools/aerolint/kernel_state.py) flags every `mutable` member,
/// namespace-scope mutable global, and function-local `static` in
/// src/delaunay and src/geom that lacks this annotation: each one is state
/// the multi-threaded kernel insert path could reach, and each must declare
/// who may touch it (phase-barrier ownership, main-thread-only, per-thread).
/// `thread_local`, `const`, `constexpr`, and std::atomic declarations are
/// exempt (per-thread or immutable or covered by the atomics audit).
#define AERO_SHARED_STATE(...)

namespace aero {

/// std::mutex wrapped as a Clang capability. Same cost, same semantics; the
/// wrapper exists only so the analysis can name the resource.
class AERO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AERO_ACQUIRE() { m_.lock(); }
  void unlock() AERO_RELEASE() { m_.unlock(); }
  bool try_lock() AERO_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Condition variable usable with aero::Mutex (any-lock flavor; the runtime
/// waits are millisecond-scale so the small dispatch overhead over
/// std::condition_variable is irrelevant here).
using CondVar = std::condition_variable_any;

/// RAII lock with scope-bound hold, the std::lock_guard of this codebase.
class AERO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) AERO_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() AERO_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// RAII lock that can sit under a condition-variable wait. Waits re-check
/// their condition in the caller's loop: the analysis cannot model the
/// release/reacquire inside wait(), so that single call is opted out while
/// every access around it stays checked.
class AERO_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) AERO_ACQUIRE(m) : lock_(m) {}
  ~UniqueLock() AERO_RELEASE() {}  // lock_'s destructor unlocks
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void wait(CondVar& cv) AERO_NO_THREAD_SAFETY_ANALYSIS { cv.wait(lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      CondVar& cv, const std::chrono::time_point<Clock, Duration>& due)
      AERO_NO_THREAD_SAFETY_ANALYSIS {
    return cv.wait_until(lock_, due);
  }

 private:
  std::unique_lock<Mutex> lock_;
};

}  // namespace aero
