#pragma once

// Machine-readable benchmark baselines: every perf-trajectory bench writes a
// BENCH_<name>.json next to its stdout report so future PRs can diff runs.
// Schema (keep stable -- downstream tooling greps these):
//   {"bench": ..., "case": ..., "ranks": N, "wall_ms": W,
//    "peak_rss_kb": R, "counters": {name: number, ...}}

#include <string>
#include <utility>
#include <vector>

namespace aero::obs {

struct BenchReport {
  std::string bench;      ///< benchmark binary name, e.g. "bench_scaling"
  std::string case_name;  ///< input case, e.g. "three-element-400"
  int ranks = 1;          ///< rank count the headline number refers to
  double wall_ms = 0.0;   ///< wall-clock of the measured section
  /// Free-form named results (speedups, triangle counts, overhead %, ...).
  std::vector<std::pair<std::string, double>> counters;
};

/// Peak resident set size of this process in kB (0 where unsupported).
long peak_rss_kb();

/// Write the report as one JSON object; returns false on IO failure.
bool write_bench_json(const BenchReport& report, const std::string& path);

}  // namespace aero::obs
