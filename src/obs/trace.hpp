#pragma once

// Low-overhead tracing for the mesher: every thread that emits events owns a
// fixed-capacity buffer of spans and instants, written without locks or heap
// allocation on the hot path and drained once by the exporters after the run.
//
// Design constraints (see DESIGN.md "Observability"):
//   * zero heap allocation per event: names/categories are static string
//     literals carried by pointer, the buffer is preallocated at thread
//     registration (the only locked, cold operation);
//   * single-writer buffers: only the owning thread emits, so the hot path
//     is one relaxed index load, one struct store, one release index store;
//   * bounded memory: a full buffer drops new events and counts the drops --
//     a trace is diagnostic data, never a reason to stall the mesher;
//   * observation only: recording never feeds back into the pipeline, so a
//     traced run produces a mesh bit-identical to an untraced one.
//
// Compile-out: building with -DAERO_TRACE=OFF (CMake) defines
// AERO_TRACE_ENABLED=0 and every AERO_TRACE_* macro expands to nothing; the
// recorder itself stays linkable so the exporters and tests still build.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/annotations.hpp"

#ifndef AERO_TRACE_ENABLED
#define AERO_TRACE_ENABLED 1
#endif

namespace aero::obs {

/// One recorded event. Plain data; `category`/`name` must be string literals
/// (or otherwise outlive the recorder) -- they are interned by pointer so
/// recording never copies or allocates.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant };
  const char* category = nullptr;
  const char* name = nullptr;
  std::int64_t start_ns = 0;     ///< steady-clock time since recorder epoch
  std::int64_t duration_ns = 0;  ///< 0 for instants
  std::uint64_t arg = 0;         ///< optional payload (unit id, bytes, ...)
  Kind kind = Kind::kSpan;
};

/// Fixed-capacity single-writer event buffer. Only the owning thread calls
/// emit(); readers (exporters, tests) see a consistent prefix through the
/// release/acquire handshake on `size_`, so a snapshot taken while the owner
/// is still running is safe, just possibly short.
class ThreadBuffer {
 public:
  ThreadBuffer(std::uint32_t tid, std::size_t capacity)
      : events_(capacity), tid_(tid) {}

  /// Hot path: record one event, or count a drop when full.
  void emit(const TraceEvent& e) {
    // aerolint: allow(atomic-order: single-writer index -- the owner rereads its own last store)
    const std::size_t i = size_.load(std::memory_order_relaxed);
    if (i >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[i] = e;
    size_.store(i + 1, std::memory_order_release);
  }

  std::uint32_t tid() const { return tid_; }
  int rank() const { return rank_.load(std::memory_order_relaxed); }
  void set_rank(int r) { rank_.store(r, std::memory_order_relaxed); }
  const char* name() const { return name_.load(std::memory_order_relaxed); }
  void set_name(const char* n) { name_.store(n, std::memory_order_relaxed); }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return events_.size(); }

  /// Reader side: events [0, size()) are fully written.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  const TraceEvent& event(std::size_t i) const { return events_[i]; }

 private:
  std::vector<TraceEvent> events_;  ///< preallocated; slots written in order
  /// The release store publishes events_[0, size_) to snapshot readers.
  std::atomic<std::size_t> size_ AERO_ATOMIC_ROLE(published){0};
  std::atomic<std::uint64_t> dropped_ AERO_ATOMIC_ROLE(counter){0};
  std::atomic<const char*> name_ AERO_ATOMIC_ROLE(flag, relaxed){"thread"};
  std::atomic<int> rank_ AERO_ATOMIC_ROLE(flag, relaxed){-1};
  std::uint32_t tid_;
};

/// Per-run trace configuration, lowered from the flat aero::Options and the
/// aeromesh --trace flag.
struct TraceConfig {
  bool enabled = false;
  /// Capacity of each thread's event buffer; overflowing events are dropped
  /// (and counted), never grown -- the trace has a fixed memory ceiling.
  std::size_t events_per_thread = 1u << 16;
};

/// Process-wide recorder: owns every thread's buffer, hands threads their
/// buffer on first emit (the one locked, cold operation), and timestamps
/// events against a common steady-clock epoch. Buffers outlive their owning
/// threads so pool workers' events survive until the exporter drains them.
class TraceRecorder {
 public:
  static TraceRecorder& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Applies to buffers registered after the call (existing ones keep their
  /// size); configure before the instrumented run starts.
  void set_capacity(std::size_t events_per_thread);
  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the recorder epoch (monotonic).
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// This thread's buffer, registering it on first use.
  ThreadBuffer& local();

  /// Name/rank-tag the calling thread for the exporters (rank -1 = host).
  void tag_thread(const char* name, int rank);

  void span(const char* category, const char* name, std::int64_t start_ns,
            std::int64_t duration_ns, std::uint64_t arg = 0) {
    local().emit(TraceEvent{category, name, start_ns, duration_ns, arg,
                            TraceEvent::Kind::kSpan});
  }
  void instant(const char* category, const char* name, std::uint64_t arg = 0) {
    local().emit(TraceEvent{category, name, now_ns(), 0, arg,
                            TraceEvent::Kind::kInstant});
  }

  /// Flattened copy of every buffer, safe concurrently with live emitters
  /// (their in-progress events may be missing, never torn).
  struct Snapshot {
    struct Thread {
      std::uint32_t tid = 0;
      const char* name = "thread";
      int rank = -1;
      std::uint64_t dropped = 0;
      std::vector<TraceEvent> events;
    };
    std::vector<Thread> threads;
    std::uint64_t total_dropped = 0;
  };
  Snapshot snapshot() const;

  std::uint64_t total_dropped() const;

  /// Drop every buffer and invalidate threads' cached registrations (they
  /// re-register on next emit). Callers must ensure no thread is emitting
  /// concurrently; meant for tests and between independent runs.
  void reset();

 private:
  mutable Mutex m_ AERO_LOCK_NAME("obs.trace", 100);
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ AERO_GUARDED_BY(m_);
  std::atomic<bool> enabled_ AERO_ATOMIC_ROLE(flag, relaxed){false};
  std::atomic<std::size_t> capacity_ AERO_ATOMIC_ROLE(flag, relaxed){1u << 16};
  /// Bumped by reset(); threads holding a stale generation re-register.
  std::atomic<std::uint64_t> generation_ AERO_ATOMIC_ROLE(counter){0};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// Enable the global recorder per `cfg`. Only ever turns tracing ON (a
/// disabled TraceConfig must not cancel a trace the CLI already requested).
void apply(const TraceConfig& cfg);

/// Free-function helpers behind the macros.
void instant(const char* category, const char* name, std::uint64_t arg = 0);
void tag_thread(const char* name, int rank);

/// RAII span: captures the start time on construction (when the recorder is
/// enabled and `sampled` is true) and emits one complete-span event on
/// destruction. When disabled, cost is a single relaxed atomic load.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name, bool sampled = true) {
    TraceRecorder& r = TraceRecorder::global();
    if (sampled && r.enabled()) {
      rec_ = &r;
      category_ = category;
      name_ = name;
      start_ns_ = r.now_ns();
    }
  }
  ~ScopedSpan() {
    if (rec_ != nullptr) {
      rec_->span(category_, name_, start_ns_, rec_->now_ns() - start_ns_,
                 arg_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a numeric payload to the span (recorded at destruction).
  void set_arg(std::uint64_t arg) { arg_ = arg; }

 private:
  TraceRecorder* rec_ = nullptr;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
};

}  // namespace aero::obs

#if AERO_TRACE_ENABLED

#define AERO_OBS_CAT2(a, b) a##b
#define AERO_OBS_CAT(a, b) AERO_OBS_CAT2(a, b)

/// Span covering the rest of the enclosing scope. `name` may be a runtime
/// expression, but must evaluate to a string with static storage duration.
#define AERO_TRACE_SPAN(category, name) \
  ::aero::obs::ScopedSpan AERO_OBS_CAT(aero_obs_span_, __LINE__)(category, \
                                                                 name)

/// Like AERO_TRACE_SPAN, but only every `every`-th execution of this site
/// (per thread) actually records -- for hot loops where a per-iteration span
/// would swamp the buffer. The recorded spans are an unbiased 1/every sample
/// of iteration latency.
#define AERO_TRACE_SPAN_SAMPLED(category, name, every)                       \
  static thread_local std::uint32_t AERO_OBS_CAT(aero_obs_n_, __LINE__) = 0; \
  ::aero::obs::ScopedSpan AERO_OBS_CAT(aero_obs_span_, __LINE__)(            \
      category, name, (AERO_OBS_CAT(aero_obs_n_, __LINE__)++ % (every)) == 0)

#define AERO_TRACE_INSTANT(category, name) \
  ::aero::obs::instant(category, name)
#define AERO_TRACE_INSTANT_ARG(category, name, arg) \
  ::aero::obs::instant(category, name, static_cast<std::uint64_t>(arg))

/// Name/rank-tag the calling thread in the exported trace.
#define AERO_TRACE_THREAD(name, rank) ::aero::obs::tag_thread(name, rank)

#else  // AERO_TRACE_ENABLED

#define AERO_TRACE_SPAN(category, name) ((void)0)
#define AERO_TRACE_SPAN_SAMPLED(category, name, every) ((void)0)
#define AERO_TRACE_INSTANT(category, name) ((void)0)
#define AERO_TRACE_INSTANT_ARG(category, name, arg) ((void)0)
#define AERO_TRACE_THREAD(name, rank) ((void)0)

#endif  // AERO_TRACE_ENABLED
