#pragma once

#include <algorithm>
#include <cmath>

#include "geom/bbox.hpp"
#include "geom/vec2.hpp"

namespace aero {

/// Graded isotropic sizing for the inviscid region: the target edge length
/// grows linearly with distance from the near-body box toward the far-field,
/// so triangle count stays bounded even though the far-field spans 30-50
/// chord lengths (the "exponentially growing area" the paper parallelizes).
struct GradedSizing {
  BBox2 inner;                  ///< near-body box the grading measures from
  double surface_length = 0.02; ///< target edge length at the near-body box
  double grade = 0.25;          ///< edge-length growth per unit distance

  /// Distance from p to the inner box (0 inside). Plain sqrt, not
  /// std::hypot: coordinates are O(farfield) chord lengths so the
  /// overflow-proofing of hypot buys nothing, and this runs once per
  /// triangle-quality check inside Ruppert refinement.
  double distance_to_inner(Vec2 p) const {
    const double dx =
        std::max({inner.lo.x - p.x, 0.0, p.x - inner.hi.x});
    const double dy =
        std::max({inner.lo.y - p.y, 0.0, p.y - inner.hi.y});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Target edge length at p.
  double length_at(Vec2 p) const {
    return surface_length + grade * distance_to_inner(p);
  }

  /// Target (maximum) triangle area at p: area of an equilateral triangle
  /// with the target edge length.
  double area_at(Vec2 p) const {
    const double l = length_at(p);
    return 0.4330127018922193 * l * l;  // sqrt(3)/4 * l^2
  }

  /// Decoupling zone size from the paper's equation (1):
  ///   k = 1/2 * sqrt(A / sqrt(2))
  /// where A is the desired area at the location. Border points spaced
  /// D in [2k/sqrt(3), 2k) keep independently refined neighbors Delaunay-
  /// conforming under Ruppert's sqrt(2) circumradius-to-edge bound.
  double k_at(Vec2 p) const {
    return 0.5 * std::sqrt(area_at(p) / 1.4142135623730951);
  }
};

}  // namespace aero
