#include "inviscid/decouple.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <cmath>

#include "geom/triangle_quality.hpp"

namespace aero {

namespace {

constexpr double kSqrt3 = 1.7320508075688772;

/// Centroid (area-weighted) of a convex CCW polygon.
Vec2 polygon_centroid(const std::vector<Vec2>& poly) {
  double area2 = 0.0;
  Vec2 c{};
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Vec2 a = poly[i];
    const Vec2 b = poly[(i + 1) % poly.size()];
    const double w = a.cross(b);
    area2 += w;
    c += (a + b) * w;
  }
  if (area2 == 0.0) return poly.front();
  return c / (3.0 * area2);
}

}  // namespace

namespace {

/// Triangle-count estimate over one triangle of a fan decomposition:
/// area / target-area, with recursive 4-way subdivision while the sizing
/// varies too much across the triangle for a midpoint sample to be honest.
/// `budget` caps the total number of evaluations per estimate call: large
/// subdomains spanning the whole gradation range would otherwise subdivide
/// into millions of pieces, and the estimate only steers load balancing.
double estimate_over_triangle(Vec2 a, Vec2 b, Vec2 c,
                              const GradedSizing& sizing, int depth,
                              int& budget) {
  const Vec2 centroid{(a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0};
  const double target_len = sizing.length_at(centroid);
  const double longest =
      std::max({distance(a, b), distance(b, c), distance(c, a)});
  if (depth <= 0 || --budget <= 0 || longest < 8.0 * target_len) {
    // The 1.8 factor is the measured Ruppert overshoot: refinement to an
    // area bound A produces triangles averaging ~A/1.8 (splits land below
    // the bound). Calibrated against refine_subdomain on graded quadrants.
    return 1.8 * std::fabs(signed_area(a, b, c)) / sizing.area_at(centroid);
  }
  const Vec2 ab = midpoint(a, b), bc = midpoint(b, c), ca = midpoint(c, a);
  return estimate_over_triangle(a, ab, ca, sizing, depth - 1, budget) +
         estimate_over_triangle(ab, b, bc, sizing, depth - 1, budget) +
         estimate_over_triangle(ca, bc, c, sizing, depth - 1, budget) +
         estimate_over_triangle(ab, bc, ca, sizing, depth - 1, budget);
}

}  // namespace

double InviscidSubdomain::estimated_triangles(
    const GradedSizing& sizing) const {
  // Fan the convex polygon from its centroid; each fan triangle contributes
  // its integrated 1/target-area. Holes subtract the same estimate.
  const Vec2 c = polygon_centroid(border);
  double est = 0.0;
  int budget = 8192;
  for (std::size_t i = 0; i < border.size(); ++i) {
    const Vec2 a = border[i];
    const Vec2 b = border[(i + 1) % border.size()];
    est += estimate_over_triangle(c, a, b, sizing, 10, budget);
  }
  // Holes (near-body only) are not subtracted: the estimate is only used
  // for decoupling recursion and load-balancing priority, and the near-body
  // subdomain is never split, so an overestimate just schedules it first.
  return std::max(est, 1.0);
}

std::vector<Vec2> decouple_segment(Vec2 a, Vec2 b,
                                   const GradedSizing& sizing) {
  std::vector<Vec2> out;
  const double total = distance(a, b);
  if (total <= 0.0) return out;
  const Vec2 dir = (b - a) / total;

  double s = 0.0;  // arc-length position of the current vertex
  Vec2 current = a;
  while (true) {
    const double k_current = sizing.k_at(current);
    // Step inside [2k/sqrt(3), 2k): aim high for fewer points, stay strictly
    // below the Delaunay-safety ceiling.
    double d = 1.9 * k_current;
    // Repair: the next vertex must also satisfy D < 2 k_next; where the
    // sizing shrinks along the march, pull the point closer (a few fixed-
    // point iterations converge because k is 1-Lipschitz in position here).
    for (int iter = 0; iter < 8; ++iter) {
      const Vec2 next = a + dir * (s + d);
      const double k_next = sizing.k_at(next);
      if (d < 2.0 * k_next) break;
      d = 1.9 * k_next;
    }
    d = std::max(d, 2.0 * k_current / kSqrt3);

    if (s + d >= total - 0.5 * d) break;  // the endpoint closes the march
    s += d;
    current = a + dir * s;
    out.push_back(current);
  }
  return out;
}

namespace {

/// Append `a`, then the decoupled interior points of segment (a, b).
void append_side(std::vector<Vec2>& border, Vec2 a, Vec2 b,
                 const GradedSizing& sizing) {
  border.push_back(a);
  const auto mids = decouple_segment(a, b, sizing);
  border.insert(border.end(), mids.begin(), mids.end());
}

InviscidSubdomain make_quad(Vec2 c0, Vec2 c1, Vec2 c2, Vec2 c3,
                            const GradedSizing& sizing) {
  InviscidSubdomain s;
  s.corners[0] = 0;
  append_side(s.border, c0, c1, sizing);
  s.corners[1] = s.border.size();
  append_side(s.border, c1, c2, sizing);
  s.corners[2] = s.border.size();
  append_side(s.border, c2, c3, sizing);
  s.corners[3] = s.border.size();
  append_side(s.border, c3, c0, sizing);
  return s;
}

}  // namespace

std::vector<InviscidSubdomain> initial_quadrants(const InviscidDomain& d) {
  const Vec2 fl = d.outer.lo;
  const Vec2 fh = d.outer.hi;
  const Vec2 bl = d.inner.lo;
  const Vec2 bh = d.inner.hi;
  const Vec2 f00{fl.x, fl.y}, f10{fh.x, fl.y}, f11{fh.x, fh.y}, f01{fl.x, fh.y};
  const Vec2 b00{bl.x, bl.y}, b10{bh.x, bl.y}, b11{bh.x, bh.y}, b01{bl.x, bh.y};

  // IMPORTANT: shared borders must be discretized identically on both sides.
  // decouple_segment(a, b, ...) is orientation-dependent, so each shared
  // border is generated once here and each quadrant is assembled from the
  // same point sequences. The four trapezoids (bottom, right, top, left)
  // share the diagonals f00-b00, f10-b10, f11-b11, f01-b01.
  const auto diag00 = decouple_segment(f00, b00, d.sizing);
  const auto diag10 = decouple_segment(f10, b10, d.sizing);
  const auto diag11 = decouple_segment(f11, b11, d.sizing);
  const auto diag01 = decouple_segment(f01, b01, d.sizing);
  // Near-body box sides (shared with the near-body subdomain), CCW for the
  // near-body polygon: b00 -> b10 -> b11 -> b01.
  const auto inner_bottom = decouple_segment(b00, b10, d.sizing);
  const auto inner_right = decouple_segment(b10, b11, d.sizing);
  const auto inner_top = decouple_segment(b11, b01, d.sizing);
  const auto inner_left = decouple_segment(b01, b00, d.sizing);
  // Far-field sides belong to exactly one quadrant each; discretize anyway
  // so refinement starts graded.
  const auto outer_bottom = decouple_segment(f00, f10, d.sizing);
  const auto outer_right = decouple_segment(f10, f11, d.sizing);
  const auto outer_top = decouple_segment(f11, f01, d.sizing);
  const auto outer_left = decouple_segment(f01, f00, d.sizing);

  const auto reversed = [](std::vector<Vec2> v) {
    std::reverse(v.begin(), v.end());
    return v;
  };

  std::vector<InviscidSubdomain> quads(4);
  // Bottom trapezoid, CCW: f00 -> f10 -> b10 -> b00.
  {
    InviscidSubdomain& s = quads[0];
    s.corners[0] = 0;
    s.border.push_back(f00);
    s.border.insert(s.border.end(), outer_bottom.begin(), outer_bottom.end());
    s.corners[1] = s.border.size();
    s.border.push_back(f10);
    {
      const auto c = diag10;
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
    s.corners[2] = s.border.size();
    s.border.push_back(b10);
    {
      const auto c = reversed(inner_bottom);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
    s.corners[3] = s.border.size();
    s.border.push_back(b00);
    {
      const auto c = reversed(diag00);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
  }
  // Right trapezoid, CCW: f10 -> f11 -> b11 -> b10.
  {
    InviscidSubdomain& s = quads[1];
    s.corners[0] = 0;
    s.border.push_back(f10);
    s.border.insert(s.border.end(), outer_right.begin(), outer_right.end());
    s.corners[1] = s.border.size();
    s.border.push_back(f11);
    s.border.insert(s.border.end(), diag11.begin(), diag11.end());
    s.corners[2] = s.border.size();
    s.border.push_back(b11);
    {
      const auto c = reversed(inner_right);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
    s.corners[3] = s.border.size();
    s.border.push_back(b10);
    {
      const auto c = reversed(diag10);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
  }
  // Top trapezoid, CCW: f11 -> f01 -> b01 -> b11.
  {
    InviscidSubdomain& s = quads[2];
    s.corners[0] = 0;
    s.border.push_back(f11);
    s.border.insert(s.border.end(), outer_top.begin(), outer_top.end());
    s.corners[1] = s.border.size();
    s.border.push_back(f01);
    s.border.insert(s.border.end(), diag01.begin(), diag01.end());
    s.corners[2] = s.border.size();
    s.border.push_back(b01);
    {
      const auto c = reversed(inner_top);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
    s.corners[3] = s.border.size();
    s.border.push_back(b11);
    {
      const auto c = reversed(diag11);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
  }
  // Left trapezoid, CCW: f01 -> f00 -> b00 -> b01.
  {
    InviscidSubdomain& s = quads[3];
    s.corners[0] = 0;
    s.border.push_back(f01);
    s.border.insert(s.border.end(), outer_left.begin(), outer_left.end());
    s.corners[1] = s.border.size();
    s.border.push_back(f00);
    s.border.insert(s.border.end(), diag00.begin(), diag00.end());
    s.corners[2] = s.border.size();
    s.border.push_back(b00);
    {
      const auto c = reversed(inner_left);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
    s.corners[3] = s.border.size();
    s.border.push_back(b01);
    {
      const auto c = reversed(diag01);
      s.border.insert(s.border.end(), c.begin(), c.end());
    }
  }
  return quads;
}

InviscidSubdomain near_body_subdomain(const InviscidDomain& d) {
  const Vec2 b00{d.inner.lo.x, d.inner.lo.y};
  const Vec2 b10{d.inner.hi.x, d.inner.lo.y};
  const Vec2 b11{d.inner.hi.x, d.inner.hi.y};
  const Vec2 b01{d.inner.lo.x, d.inner.hi.y};
  InviscidSubdomain s = make_quad(b00, b10, b11, b01, d.sizing);
  s.hole_segments = d.bl_interface;
  s.hole_seeds = d.hole_seeds;
  return s;
}

std::vector<InviscidSubdomain> plus_split(const InviscidSubdomain& sub,
                                          const GradedSizing& sizing) {
  if (!sub.hole_segments.empty()) return {};  // the near-body piece stays whole
  const std::size_t n = sub.border.size();

  // For each logical side, the existing border point nearest the geometric
  // side midpoint, strictly between the corners.
  std::array<std::size_t, 4> attach{};
  for (int side = 0; side < 4; ++side) {
    const std::size_t from = sub.corners[static_cast<std::size_t>(side)];
    const std::size_t to = sub.corners[static_cast<std::size_t>((side + 1) % 4)];
    const std::size_t count = (to + n - from) % n;
    if (count < 2) return {};  // no interior point available on this side
    const Vec2 mid = midpoint(sub.border[from], sub.border[to % n]);
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_i = from;
    for (std::size_t k = 1; k < count; ++k) {
      const std::size_t i = (from + k) % n;
      const double dist = distance2(sub.border[i], mid);
      if (dist < best) {
        best = dist;
        best_i = i;
      }
    }
    attach[static_cast<std::size_t>(side)] = best_i;
  }

  const Vec2 center = polygon_centroid(sub.border);
  // Decoupled interior points along each arm of the '+', generated once so
  // the two children sharing an arm see identical borders.
  std::array<std::vector<Vec2>, 4> arms;
  for (int i = 0; i < 4; ++i) {
    arms[static_cast<std::size_t>(i)] = decouple_segment(
        center, sub.border[attach[static_cast<std::size_t>(i)]], sizing);
  }

  // Child i: center -> arm i -> border chain attach[i]..attach[i+1]
  // (through corner i+1) -> reversed arm i+1 -> back to center.
  std::vector<InviscidSubdomain> children(4);
  for (int i = 0; i < 4; ++i) {
    InviscidSubdomain& c = children[static_cast<std::size_t>(i)];
    c.level = sub.level + 1;
    const std::size_t a0 = attach[static_cast<std::size_t>(i)];
    const std::size_t a1 = attach[static_cast<std::size_t>((i + 1) % 4)];

    c.corners[0] = c.border.size();
    c.border.push_back(center);
    c.border.insert(c.border.end(), arms[static_cast<std::size_t>(i)].begin(),
                    arms[static_cast<std::size_t>(i)].end());
    c.corners[1] = c.border.size();
    // Border chain from a0 to a1 going forward (CCW) through corner i+1.
    const std::size_t corner_mid = sub.corners[static_cast<std::size_t>((i + 1) % 4)];
    for (std::size_t j = a0; j != a1; j = (j + 1) % n) {
      c.border.push_back(sub.border[j]);
      if (j == corner_mid) c.corners[2] = c.border.size() - 1;
    }
    c.border.push_back(sub.border[a1]);
    c.corners[3] = c.border.size() - 1;
    // Reversed arm i+1 back toward the center (center itself closes).
    const auto& arm1 = arms[static_cast<std::size_t>((i + 1) % 4)];
    for (auto it = arm1.rbegin(); it != arm1.rend(); ++it) {
      c.border.push_back(*it);
    }
  }
  return children;
}

std::vector<InviscidSubdomain> decouple_recursive(InviscidSubdomain sub,
                                                  const GradedSizing& sizing,
                                                  double target_triangles,
                                                  int max_level) {
  std::vector<InviscidSubdomain> out;
  std::vector<InviscidSubdomain> stack;
  stack.push_back(std::move(sub));
  while (!stack.empty()) {
    InviscidSubdomain s = std::move(stack.back());
    stack.pop_back();
    if (s.level >= max_level ||
        s.estimated_triangles(sizing) <= target_triangles) {
      out.push_back(std::move(s));
      continue;
    }
    auto children = plus_split(s, sizing);
    if (children.empty()) {
      out.push_back(std::move(s));
      continue;
    }
    for (auto& c : children) stack.push_back(std::move(c));
  }
  return out;
}

TriangulateResult refine_subdomain(const InviscidSubdomain& sub,
                                   const GradedSizing& sizing, int threads) {
  Pslg pslg;
  pslg.points = sub.border;
  const auto nb = static_cast<std::uint32_t>(sub.border.size());
  for (std::uint32_t i = 0; i < nb; ++i) {
    pslg.segments.emplace_back(i, (i + 1) % nb);
  }
  if (!sub.hole_segments.empty()) {
    std::unordered_map<Vec2, std::uint32_t, Vec2Hash> index_of;
    index_of.reserve(sub.hole_segments.size() * 2);
    const auto intern = [&](Vec2 p) {
      const auto [it, fresh] =
          index_of.try_emplace(p, static_cast<std::uint32_t>(pslg.points.size()));
      if (fresh) pslg.points.push_back(p);
      return it->second;
    };
    for (const auto& [a, b] : sub.hole_segments) {
      const std::uint32_t ia = intern(a);
      const std::uint32_t ib = intern(b);
      if (ia != ib) pslg.segments.emplace_back(ia, ib);
    }
    pslg.holes = sub.hole_seeds;
  }

  TriangulateOptions opts;
  opts.constrained = true;
  opts.carve = true;
  opts.refine = true;
  opts.refine_options.radius_edge_bound = 1.4142135623730951;
  opts.refine_options.sizing = [sizing](Vec2 p) { return sizing.area_at(p); };
  // Shared borders are never split: the decoupling spacing guarantees they
  // never need to be, and splitting would break cross-process conformity.
  opts.refine_options.splittable = [](Vec2, Vec2) { return false; };
  // Intra-rank threads go to the refiner's scan only, NOT to
  // TriangulateOptions::threads: the border clouds here are far below the
  // scatter engine's minimum anyway, and keeping the triangulation
  // unconditionally sequential makes the thread-count invariance of the
  // subdomain mesh structural rather than incidental.
  opts.refine_options.threads = std::max(1, threads);
  return triangulate(pslg, opts);
}

}  // namespace aero
