#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "delaunay/triangulator.hpp"
#include "inviscid/sizing.hpp"

namespace aero {

/// A decoupled inviscid subdomain: a convex counter-clockwise polygon whose
/// border is already discretized to the graded decoupling spacing, so it can
/// be refined independently of its neighbors without disturbing the shared
/// border (Linardakis-Chrisochoides graded Delaunay decoupling).
///
/// Only the counter-clockwise point list is stored between decoupling steps;
/// edges are constructed when the subdomain is ready to be refined, which is
/// the paper's communication-volume optimization.
struct InviscidSubdomain {
  std::vector<Vec2> border;       ///< CCW, closed implicitly (last->first)
  std::array<std::size_t, 4> corners{};  ///< indices of the 4 logical corners
  int level = 0;

  /// For the near-body subdomain only: the constraint segments bounding the
  /// boundary-layer + airfoil holes (the exact boundary-layer mesh boundary
  /// plus any exposed surface edges) and one seed inside each element.
  std::vector<std::pair<Vec2, Vec2>> hole_segments;
  std::vector<Vec2> hole_seeds;

  /// Estimated number of triangles refinement will create (drives both the
  /// recursion cutoff and the load-balancing cost).
  double estimated_triangles(const GradedSizing& sizing) const;
};

/// The inviscid domain layout: far-field box, near-body box, and the
/// boundary-layer outer borders the near-body subdomain must conform to.
struct InviscidDomain {
  BBox2 inner;                  ///< near-body box (contains airfoil + BL)
  BBox2 outer;                  ///< far-field box (30-50 chords)
  /// The exact interface between the anisotropic boundary-layer mesh and
  /// the isotropic near-body mesh, as constraint segments.
  std::vector<std::pair<Vec2, Vec2>> bl_interface;
  std::vector<Vec2> hole_seeds; ///< one seed inside each element
  GradedSizing sizing;
};

/// March from `a` to `b` inserting graded decoupling points (exclusive of
/// the endpoints): spacing D in [2k/sqrt(3), 2k) with the Delaunay-safety
/// repair D < 2 k_next (points pulled closer where the sizing shrinks).
std::vector<Vec2> decouple_segment(Vec2 a, Vec2 b, const GradedSizing& sizing);

/// Initial decoupling: four convex trapezoid quadrants between the near-body
/// box and the far-field box (paper Figure 9), with every shared border
/// (the four diagonals and the near-body box sides) and the outer boundary
/// pre-discretized by the grading rule.
std::vector<InviscidSubdomain> initial_quadrants(const InviscidDomain& domain);

/// The near-body subdomain: the near-body box with the boundary-layer mesh
/// boundary as hole constraints. Its outer border matches the quadrants'
/// inner borders exactly.
InviscidSubdomain near_body_subdomain(const InviscidDomain& domain);

/// Recursive '+' decoupling of one subdomain: a center point joined to the
/// existing border point nearest each side midpoint (no new border points,
/// so neighbors are undisturbed and no communication is needed). Recurses
/// until the triangle estimate drops below `target_triangles` or no valid
/// attach points remain.
std::vector<InviscidSubdomain> decouple_recursive(InviscidSubdomain sub,
                                                  const GradedSizing& sizing,
                                                  double target_triangles,
                                                  int max_level = 12);

/// Split one subdomain once with the '+' pattern. Returns an empty vector if
/// the subdomain cannot be split (sides too short).
std::vector<InviscidSubdomain> plus_split(const InviscidSubdomain& sub,
                                          const GradedSizing& sizing);

/// Refine a decoupled subdomain: constrained triangulation of its border
/// (plus hole borders) with Ruppert refinement bounded by sqrt(2) and the
/// graded sizing. Shared border segments are protected from splitting; the
/// decoupling spacing guarantees refinement never needs to split them.
///
/// `threads` parallelizes only the refiner's initial scan (see
/// RefineOptions::threads) — never the border triangulation — so the
/// subdomain mesh is identical at every thread count. That invariance is
/// what lets threads_per_rank stay out of the service cache key.
TriangulateResult refine_subdomain(const InviscidSubdomain& sub,
                                   const GradedSizing& sizing,
                                   int threads = 1);

}  // namespace aero
